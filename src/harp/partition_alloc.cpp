#include "harp/partition_alloc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace harp::core {

Partition PartitionTable::get(Direction dir, NodeId node, int layer) const {
  HARP_ASSERT(node < num_nodes());
  const auto& per_node = side(dir)[node];
  const auto it = per_node.find(layer);
  return it == per_node.end() ? Partition{} : it->second;
}

void PartitionTable::set(Direction dir, NodeId node, int layer, Partition p) {
  HARP_ASSERT(node < num_nodes());
  HARP_ASSERT(layer >= 1);
  if (p.empty()) {
    side(dir)[node].erase(layer);
  } else {
    side(dir)[node][layer] = p;
  }
}

void PartitionTable::erase(Direction dir, NodeId node, int layer) {
  HARP_ASSERT(node < num_nodes());
  side(dir)[node].erase(layer);
}

std::vector<int> PartitionTable::layers(Direction dir, NodeId node) const {
  HARP_ASSERT(node < num_nodes());
  std::vector<int> out;
  for (const auto& [layer, p] : side(dir)[node]) out.push_back(layer);
  return out;
}

std::vector<PartitionTable::Row> PartitionTable::rows(Direction dir) const {
  std::vector<Row> out;
  for (NodeId node = 0; node < num_nodes(); ++node) {
    for (const auto& [layer, p] : side(dir)[node]) {
      out.push_back({node, layer, p});
    }
  }
  return out;
}

namespace {

std::int64_t total_slots(const std::map<int, ResourceComponent>& comps) {
  std::int64_t total = 0;
  for (const auto& [layer, c] : comps) total += c.slots;
  return total;
}

std::map<int, ResourceComponent> gateway_components(const InterfaceSet& ifs) {
  std::map<int, ResourceComponent> comps;
  for (int layer : ifs.layers(net::Topology::gateway())) {
    comps[layer] = ifs.component(net::Topology::gateway(), layer);
  }
  return comps;
}

/// Derives child partitions from every composed layer's layout, top-down.
void descend(const net::Topology& topo, const InterfaceSet& ifs,
             Direction dir, PartitionTable& table) {
  for (NodeId node : topo.nodes_top_down()) {
    if (topo.is_leaf(node)) continue;
    for (int layer : ifs.layers(node)) {
      const auto& layout = ifs.layout(node, layer);
      if (layout.empty()) continue;  // own-layer component: no sub-partitions
      const Partition parent_part = table.get(dir, node, layer);
      HARP_ASSERT(!parent_part.empty());
      for (const packing::Placement& pl : layout) {
        const auto child = static_cast<NodeId>(pl.id);
        const ResourceComponent cc = ifs.component(child, layer);
        HARP_ASSERT(cc.slots == pl.w && cc.channels == pl.h);
        table.set(dir, child, layer,
                  Partition{cc,
                            parent_part.slot + static_cast<SlotId>(pl.x),
                            parent_part.channel +
                                static_cast<ChannelId>(pl.y)});
      }
    }
  }
}

}  // namespace

std::optional<std::map<int, Partition>> place_gateway_side(
    const std::map<int, ResourceComponent>& comps, Direction dir,
    SlotId limit_begin, SlotId limit_end,
    const std::map<int, Partition>& current, SlotId gap) {
  // Spatial processing order is deepest layer first in both directions:
  // uplink grows left-to-right from limit_begin, downlink right-to-left
  // from limit_end (keeping shallow layers earliest in time, per the
  // compliant order).
  std::vector<int> order;
  for (const auto& [layer, c] : comps) {
    if (!c.empty()) order.push_back(layer);
  }
  std::sort(order.begin(), order.end(), std::greater<int>());

  std::map<int, Partition> out;
  if (dir == Direction::kUp) {
    std::int64_t cursor = limit_begin;
    for (int layer : order) {
      const ResourceComponent c = comps.at(layer);
      std::int64_t start = cursor;
      const auto it = current.find(layer);
      if (it != current.end()) {
        start = std::max<std::int64_t>(cursor, it->second.slot);
      }
      if (start + c.slots > static_cast<std::int64_t>(limit_end)) {
        return std::nullopt;
      }
      out[layer] = Partition{c, static_cast<SlotId>(start), 0};
      cursor = start + c.slots + gap;
    }
  } else {
    std::int64_t cursor = limit_end;
    for (int layer : order) {
      const ResourceComponent c = comps.at(layer);
      std::int64_t end = cursor;
      const auto it = current.find(layer);
      if (it != current.end()) {
        end = std::min<std::int64_t>(cursor, it->second.end_slot());
      }
      const std::int64_t start = end - c.slots;
      if (start < static_cast<std::int64_t>(limit_begin)) return std::nullopt;
      out[layer] = Partition{c, static_cast<SlotId>(start), 0};
      cursor = start - static_cast<std::int64_t>(gap);
    }
  }
  return out;
}

std::pair<std::map<int, Partition>, std::map<int, Partition>>
initial_gateway_layout(const std::map<int, ResourceComponent>& up,
                       const std::map<int, ResourceComponent>& down,
                       const net::SlotframeConfig& frame) {
  frame.validate();
  for (const auto* side : {&up, &down}) {
    for (const auto& [layer, c] : *side) {
      if (c.channels > static_cast<int>(frame.num_channels)) {
        throw InfeasibleError("gateway component at layer " +
                              std::to_string(layer) + " needs " +
                              std::to_string(c.channels) +
                              " channels, have " +
                              std::to_string(frame.num_channels));
      }
    }
  }
  const std::int64_t up_total = total_slots(up);
  const std::int64_t down_total = total_slots(down);
  if (up_total + down_total > static_cast<std::int64_t>(frame.data_slots)) {
    throw InfeasibleError(
        "super-partitions need " + std::to_string(up_total + down_total) +
        " slots, data sub-frame has " + std::to_string(frame.data_slots));
  }

  // Spread the spare slots as inter-layer gaps, half per direction, so a
  // later growth of one layer can extend in place.
  const std::int64_t spare = frame.data_slots - up_total - down_total;
  const auto per_gap = [](std::int64_t budget, std::size_t layers) -> SlotId {
    return layers > 1 ? static_cast<SlotId>(budget / static_cast<std::int64_t>(
                                                         layers - 1))
                      : 0;
  };
  const SlotId up_gap = per_gap(spare / 2, up.size());
  const SlotId down_gap = per_gap(spare - spare / 2, down.size());

  const std::int64_t down_span =
      down_total +
      static_cast<std::int64_t>(down_gap) *
          (down.empty() ? 0 : static_cast<std::int64_t>(down.size()) - 1);

  auto up_parts = place_gateway_side(
      up, Direction::kUp, 0,
      static_cast<SlotId>(frame.data_slots - down_span), {}, up_gap);
  auto down_parts = place_gateway_side(down, Direction::kDown, 0,
                                       frame.data_slots, {}, down_gap);
  HARP_ASSERT(up_parts && down_parts);  // totals were checked above
  return {std::move(*up_parts), std::move(*down_parts)};
}

std::optional<std::map<int, Partition>> replace_gateway_side(
    const std::map<int, ResourceComponent>& comps, Direction dir,
    const net::SlotframeConfig& frame,
    const std::map<int, Partition>& current_side,
    const std::map<int, Partition>& other_side) {
  for (const auto& [layer, c] : comps) {
    if (c.channels > static_cast<int>(frame.num_channels)) {
      return std::nullopt;
    }
  }
  // The other direction's partitions bound the usable window.
  SlotId limit_begin = 0;
  SlotId limit_end = frame.data_slots;
  for (const auto& [layer, p] : other_side) {
    if (dir == Direction::kUp) {
      limit_end = std::min(limit_end, p.slot);
    } else {
      limit_begin = std::max(limit_begin, p.end_slot());
    }
  }
  // Anchored first: untouched layers keep their positions and only the
  // grown layer (plus whoever it displaces) moves.
  if (auto anchored = place_gateway_side(comps, dir, limit_begin, limit_end,
                                         current_side, 0)) {
    return anchored;
  }
  // Compact fallback: shift everything together.
  return place_gateway_side(comps, dir, limit_begin, limit_end, {}, 0);
}

AllocationResult allocate_partitions(const net::Topology& topo,
                                     const InterfaceSet& up,
                                     const InterfaceSet& down,
                                     const net::SlotframeConfig& frame) {
  frame.validate();

  AllocationResult result;
  result.partitions = PartitionTable(topo.size());
  const auto up_comps = gateway_components(up);
  const auto down_comps = gateway_components(down);
  result.uplink_slots = static_cast<SlotId>(total_slots(up_comps));
  result.downlink_slots = static_cast<SlotId>(total_slots(down_comps));

  auto [up_parts, down_parts] =
      initial_gateway_layout(up_comps, down_comps, frame);
  for (const auto& [layer, p] : up_parts) {
    result.partitions.set(Direction::kUp, net::Topology::gateway(), layer, p);
  }
  for (const auto& [layer, p] : down_parts) {
    result.partitions.set(Direction::kDown, net::Topology::gateway(), layer,
                          p);
  }

  descend(topo, up, Direction::kUp, result.partitions);
  descend(topo, down, Direction::kDown, result.partitions);
  return result;
}

std::string validate_partitions(const net::Topology& topo,
                                const InterfaceSet& up,
                                const InterfaceSet& down,
                                const PartitionTable& parts,
                                const net::SlotframeConfig& frame) {
  struct Tagged {
    Direction dir;
    NodeId node;
    int layer;
    Partition p;
  };

  for (Direction dir : {Direction::kUp, Direction::kDown}) {
    const InterfaceSet& ifs = dir == Direction::kUp ? up : down;

    // 1. Every non-empty component has a matching, in-bounds partition.
    for (NodeId node = 0; node < topo.size(); ++node) {
      for (int layer : ifs.layers(node)) {
        const ResourceComponent c = ifs.component(node, layer);
        const Partition p = parts.get(dir, node, layer);
        if (p.empty()) {
          return "missing partition for node " + std::to_string(node) +
                 " layer " + std::to_string(layer);
        }
        if (p.comp != c) {
          return "partition/component size mismatch at node " +
                 std::to_string(node) + " layer " + std::to_string(layer);
        }
        if (p.end_slot() > frame.data_slots ||
            p.end_channel() > frame.num_channels) {
          return "partition " + to_string(p) + " of node " +
                 std::to_string(node) + " exceeds the data sub-frame";
        }
      }
    }

    // 2. Child partitions nest inside the parent's partition at the same
    //    layer and siblings are disjoint.
    for (NodeId node = 0; node < topo.size(); ++node) {
      for (int layer : ifs.layers(node)) {
        if (ifs.layout(node, layer).empty()) continue;
        const Partition outer = parts.get(dir, node, layer);
        std::vector<Partition> inner;
        for (NodeId child : topo.children(node)) {
          if (ifs.component(child, layer).empty()) continue;
          const Partition p = parts.get(dir, child, layer);
          if (p.slot < outer.slot || p.end_slot() > outer.end_slot() ||
              p.channel < outer.channel ||
              p.end_channel() > outer.end_channel()) {
            return "child " + std::to_string(child) + " partition " +
                   to_string(p) + " escapes parent partition " +
                   to_string(outer);
          }
          inner.push_back(p);
        }
        for (std::size_t i = 0; i < inner.size(); ++i) {
          for (std::size_t j = i + 1; j < inner.size(); ++j) {
            if (inner[i].overlaps(inner[j])) {
              return "sibling partitions overlap under node " +
                     std::to_string(node) + " at layer " +
                     std::to_string(layer);
            }
          }
        }
      }
    }
  }

  // 3. The leaf-level scheduling partitions (each node's own-layer
  //    partition) are globally pairwise disjoint across nodes AND
  //    directions: this is the resource-isolation property that makes
  //    distributed scheduling collision-free.
  std::vector<Tagged> own;
  for (Direction dir : {Direction::kUp, Direction::kDown}) {
    const InterfaceSet& ifs = dir == Direction::kUp ? up : down;
    for (NodeId node = 0; node < topo.size(); ++node) {
      if (topo.is_leaf(node)) continue;
      const int l0 = topo.link_layer(node);
      if (ifs.component(node, l0).empty()) continue;
      own.push_back({dir, node, l0, parts.get(dir, node, l0)});
    }
  }
  for (std::size_t i = 0; i < own.size(); ++i) {
    for (std::size_t j = i + 1; j < own.size(); ++j) {
      if (own[i].p.overlaps(own[j].p)) {
        return "scheduling partitions of node " + std::to_string(own[i].node) +
               " (" + to_string(own[i].dir) + ") and node " +
               std::to_string(own[j].node) + " (" + to_string(own[j].dir) +
               ") overlap: " + to_string(own[i].p) + " vs " +
               to_string(own[j].p);
      }
    }
  }
  return {};
}

}  // namespace harp::core
