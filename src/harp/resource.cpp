#include "harp/resource.hpp"

#include <utility>

#include "common/error.hpp"

namespace harp::core {

const std::vector<packing::Placement> InterfaceSet::kEmptyLayout{};

InterfaceSet::InterfaceSet(std::size_t num_nodes)
    : store_(std::make_shared<Store>()) {
  store_->nodes.resize(num_nodes);
}

void InterfaceSet::resize(std::size_t num_nodes) {
  if (num_nodes > this->num_nodes()) mutable_store().nodes.resize(num_nodes);
}

InterfaceSet::Store& InterfaceSet::mutable_store() {
  if (!store_) {
    store_ = std::make_shared<Store>();
  } else if (store_.use_count() > 1) {
    // Shared with a snapshot (engine save/restore, the memo's pristine
    // last result): clone the table — the node interfaces themselves stay
    // shared until mutable_node touches one.
    store_ = std::make_shared<Store>(*store_);
  }
  return *store_;
}

InterfaceSet::NodeInterface& InterfaceSet::mutable_node(NodeId node) {
  std::shared_ptr<NodeInterface>& p = mutable_store().nodes[node];
  if (!p) {
    p = std::make_shared<NodeInterface>();
  } else if (p.use_count() > 1) {
    // Shared with a cache snapshot (or another set): clone before writing
    // so the snapshot stays what it was when taken.
    p = std::make_shared<NodeInterface>(*p);
  }
  return *p;
}

ResourceComponent InterfaceSet::component(NodeId node, int layer) const {
  HARP_ASSERT(node < num_nodes());
  const auto& p = store_->nodes[node];
  if (!p) return {};
  const auto it = p->find(layer);
  return it == p->end() ? ResourceComponent{} : it->second.comp;
}

void InterfaceSet::set_component(NodeId node, int layer, ResourceComponent c) {
  HARP_ASSERT(node < num_nodes());
  HARP_ASSERT(layer >= 1);
  if (c.empty()) {
    const auto& p = store_->nodes[node];
    if (!p || !p->contains(layer)) return;
    mutable_node(node).erase(layer);
  } else {
    mutable_node(node)[layer].comp = c;
  }
}

const std::vector<packing::Placement>& InterfaceSet::layout(NodeId node,
                                                            int layer) const {
  HARP_ASSERT(node < num_nodes());
  const auto& p = store_->nodes[node];
  if (!p) return kEmptyLayout;
  const auto it = p->find(layer);
  return it == p->end() ? kEmptyLayout : it->second.layout;
}

void InterfaceSet::set_layout(NodeId node, int layer,
                              std::vector<packing::Placement> layout) {
  HARP_ASSERT(node < num_nodes());
  NodeInterface& m = mutable_node(node);
  const auto it = m.find(layer);
  HARP_ASSERT(it != m.end());  // set the component first
  it->second.layout = std::move(layout);
}

std::vector<int> InterfaceSet::layers(NodeId node) const {
  HARP_ASSERT(node < num_nodes());
  std::vector<int> out;
  const auto& p = store_->nodes[node];
  if (!p) return out;
  out.reserve(p->size());
  for (const auto& [layer, entry] : *p) out.push_back(layer);
  return out;
}

std::int64_t InterfaceSet::interface_cells(NodeId node) const {
  HARP_ASSERT(node < num_nodes());
  std::int64_t total = 0;
  const auto& p = store_->nodes[node];
  if (!p) return total;
  for (const auto& [layer, entry] : *p) total += entry.comp.cells();
  return total;
}

std::shared_ptr<const InterfaceSet::NodeInterface>
InterfaceSet::node_interface(NodeId node) const {
  HARP_ASSERT(node < num_nodes());
  const auto& p = store_->nodes[node];
  if (!p) return std::make_shared<const NodeInterface>();
  return p;
}

void InterfaceSet::set_node_interface(
    NodeId node, std::shared_ptr<const NodeInterface> interface) {
  HARP_ASSERT(node < num_nodes());
  HARP_ASSERT(interface != nullptr);
  // Safe const_cast: every write path goes through mutable_node, which
  // clones while the snapshot's other owners hold their references.
  mutable_store().nodes[node] =
      std::const_pointer_cast<NodeInterface>(std::move(interface));
}

bool InterfaceSet::has_interface(NodeId node) const {
  HARP_ASSERT(node < num_nodes());
  return store_->nodes[node] != nullptr;
}

void InterfaceSet::clear_node(NodeId node) {
  HARP_ASSERT(node < num_nodes());
  if (store_->nodes[node] == nullptr) return;
  mutable_store().nodes[node].reset();
}

void InterfaceSet::detach() {
  if (store_) mutable_store();
}

bool operator==(const InterfaceSet& a, const InterfaceSet& b) {
  if (a.store_ == b.store_) return true;  // same table (or both empty sets)
  if (a.num_nodes() != b.num_nodes()) return false;
  static const InterfaceSet::NodeInterface kEmpty{};
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    const auto& pa = a.store_->nodes[i];
    const auto& pb = b.store_->nodes[i];
    if (pa == pb) continue;  // same snapshot (or both null)
    if ((pa ? *pa : kEmpty) != (pb ? *pb : kEmpty)) return false;
  }
  return true;
}

}  // namespace harp::core
