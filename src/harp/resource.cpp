#include "harp/resource.hpp"

#include "common/error.hpp"

namespace harp::core {

const std::vector<packing::Placement> InterfaceSet::kEmptyLayout{};

ResourceComponent InterfaceSet::component(NodeId node, int layer) const {
  HARP_ASSERT(node < nodes_.size());
  const auto it = nodes_[node].find(layer);
  return it == nodes_[node].end() ? ResourceComponent{} : it->second.comp;
}

void InterfaceSet::set_component(NodeId node, int layer, ResourceComponent c) {
  HARP_ASSERT(node < nodes_.size());
  HARP_ASSERT(layer >= 1);
  if (c.empty()) {
    nodes_[node].erase(layer);
  } else {
    nodes_[node][layer].comp = c;
  }
}

const std::vector<packing::Placement>& InterfaceSet::layout(NodeId node,
                                                            int layer) const {
  HARP_ASSERT(node < nodes_.size());
  const auto it = nodes_[node].find(layer);
  return it == nodes_[node].end() ? kEmptyLayout : it->second.layout;
}

void InterfaceSet::set_layout(NodeId node, int layer,
                              std::vector<packing::Placement> layout) {
  HARP_ASSERT(node < nodes_.size());
  const auto it = nodes_[node].find(layer);
  HARP_ASSERT(it != nodes_[node].end());  // set the component first
  it->second.layout = std::move(layout);
}

std::vector<int> InterfaceSet::layers(NodeId node) const {
  HARP_ASSERT(node < nodes_.size());
  std::vector<int> out;
  out.reserve(nodes_[node].size());
  for (const auto& [layer, entry] : nodes_[node]) out.push_back(layer);
  return out;
}

std::int64_t InterfaceSet::interface_cells(NodeId node) const {
  HARP_ASSERT(node < nodes_.size());
  std::int64_t total = 0;
  for (const auto& [layer, entry] : nodes_[node]) total += entry.comp.cells();
  return total;
}

}  // namespace harp::core
