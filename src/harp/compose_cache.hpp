// Subtree-interface memoization for full hierarchy recomputation.
//
// Bootstrap, recompaction and roam fallbacks re-derive every node's
// interface from scratch (Alg. 1 bottom-up), yet after localized churn
// most subtrees' inputs have not changed. A node's from-scratch interface
// is a pure function of
//   (direction, M, own_slack, ordered child ids,
//    per-child demand in that direction, per-child subtree fingerprint)
// so the whole per-layer interface of a subtree root can be memoized
// under a 64-bit content fingerprint of exactly those inputs.
//
// Soundness: the cache is consulted ONLY during from-scratch generation
// (generate_interfaces). The engine's live state may drift away from the
// from-scratch result between recomputations — anchored growth and kept
// reservations after dynamic adjustments — but that drifted state is never
// inserted, so a hit always reproduces what a fresh recompute would have
// produced. The audit oracle `audit::check_compose_cache` re-derives this
// equality at runtime (docs/STATIC_ANALYSIS.md).
//
// Concurrency: find/insert are guarded by one harp::Mutex (rank
// kComposeCache, annotations checked by Clang thread-safety analysis —
// docs/STATIC_ANALYSIS.md "Concurrency analysis") and the statistics are
// relaxed atomics, so parallel per-layer composition workers
// (interface_gen.cpp on runner::WorkerPool) share one cache. Fingerprint
// and validity arrays in ComposeMemo are engine-owned (no lock; the
// engine-affinity contract); during a parallel generation pass each
// worker touches only its own node's slots.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "harp/resource.hpp"
#include "net/topology.hpp"
#include "packing/rect.hpp"

namespace harp::core {

/// One 64-bit mixing step (splitmix64 finalizer over a combine), used for
/// both subtree fingerprints and cache keys. Not cryptographic; a
/// collision silently reuses a wrong entry, which the sampled audit
/// oracle would surface — at 64 bits the expected time to a single
/// collision exceeds any realistic run.
constexpr std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Shared fingerprint seed ("HARP"): every key chain starts here.
constexpr std::uint64_t kFpSeed = 0x48415250ull;

/// Content-addressed store of composed subtree interfaces: key = subtree
/// fingerprint, value = the node's full per-layer interface (own layer
/// included; own-layer entries carry no layout). Entries are shared
/// immutable snapshots of InterfaceSet node interfaces: a hit installs
/// the snapshot by pointer (O(1)); the set's copy-on-write keeps it
/// immutable if the live state later drifts.
class ComposeCache {
 public:
  using Entry = InterfaceSet::NodeInterface;

  /// Running totals since construction (monotone; the engine publishes
  /// per-pass deltas as `harp.compose_cache.*` counters and one
  /// `compose_cache` trace event, docs/OBSERVABILITY.md).
  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t inserts{0};
    std::uint64_t invalidations{0};
    std::uint64_t evictions{0};
  };

  explicit ComposeCache(std::size_t max_entries = 1 << 16);

  /// The cached interface for `key`, or nullptr (counted as hit/miss).
  std::shared_ptr<const Entry> find(std::uint64_t key) const;

  /// Stores an entry. When the map would exceed max_entries the whole map
  /// is dropped first (bulk eviction: live keys are re-inserted by the
  /// very next generation pass, stale ones are not — a simple policy that
  /// stays O(1) amortized and never scans).
  void insert(std::uint64_t key, std::shared_ptr<const Entry> entry);

  /// Bumps the invalidation total (stale fingerprints are tracked in
  /// ComposeMemo; the cache only aggregates the statistic).
  void note_invalidations(std::uint64_t n) {
    invalidations_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Counts hits served without touching the map at all: nodes whose
  /// subtree fingerprint was still valid, so the last result's content
  /// was reused as-is (same semantics as find() hits; batched per
  /// generation pass to keep the hot loop free of shared atomics).
  void note_hits(std::uint64_t n) const {
    hits_.fetch_add(n, std::memory_order_relaxed);
  }

  Stats stats() const;
  std::size_t size() const;
  std::size_t max_entries() const { return max_entries_; }
  void clear();

 private:
  mutable Mutex mu_{LockRank::kComposeCache, "core.ComposeCache.mu"};
  std::unordered_map<std::uint64_t, std::shared_ptr<const Entry>> map_
      HARP_GUARDED_BY(mu_);
  std::size_t max_entries_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Engine-side memo: per-node subtree fingerprints (per direction) with
/// validity bits, the shared entry cache, and the pristine result of the
/// last generation pass. Mutation points invalidate the ancestor chain of
/// every input change (demand set, attach, detach, reparent);
/// generate_interfaces starts from the last result, rewrites only the
/// stale nodes, and re-validates their fingerprints. A memo is bound to
/// one engine's topology lineage — reusing it across unrelated trees
/// without invalidating would reuse fingerprints that were never
/// recomputed.
///
/// Invariant: staleness is upward-closed — whenever a node whose
/// interface a chain depends on is stale, so is every ancestor above it.
/// invalidate_chain always marks its start node, then stops at the first
/// already-stale ancestor, making invalidation O(affected chain) while
/// tolerating stale-start nodes the invariant does not cover (freshly
/// attached leaves that later gain children).
class ComposeMemo {
 public:
  /// Below this many topology nodes a generation pass runs in SLIM mode:
  /// the validity-bit fast path still skips every unchanged subtree, but
  /// stale nodes are re-derived directly — no fingerprinting, no
  /// mutex-guarded content-cache find/insert, no per-node shared_ptr
  /// allocation (the serial interface pool stays usable). On small trees
  /// the content cache's bookkeeping costs more than the derivations it
  /// saves (the 220-node speedup_cached regression in
  /// BENCH_bootstrap_scale.json); slim mode keeps the incremental win and
  /// drops the bookkeeping. Results are bit-identical in every mode.
  static constexpr std::size_t kDefaultFullThreshold = 512;

  ComposeMemo(std::size_t num_nodes, std::size_t max_entries);

  /// Grows the arrays for newly attached nodes (stale until generated).
  void resize(std::size_t num_nodes);

  /// Whether a pass over `num_nodes` topology nodes should run slim.
  bool slim_pass(std::size_t num_nodes) const {
    return num_nodes < full_threshold_;
  }
  /// Adjusts the slim/full cutover (0 = always full, benches and tests
  /// that pin content-cache semantics; SIZE_MAX = always slim).
  void set_full_threshold(std::size_t nodes) { full_threshold_ = nodes; }
  std::size_t full_threshold() const { return full_threshold_; }

  /// Marks `node` and every ancestor up to the gateway stale in `dir`.
  void invalidate_chain(const net::Topology& topo, Direction dir, NodeId node);
  /// Marks everything stale in both directions (topology rewires).
  void invalidate_all();

  /// Records the generation parameters of the current pass; when they
  /// differ from the previous pass the whole direction is invalidated
  /// (fingerprints mix the parameters, but validity bits do not know
  /// about them). Returns true when the tree structure changed since the
  /// previous pass in this direction (or this is the first one): the
  /// caller must then scrub interface remnants off nodes that have become
  /// leaves — the hot loop no longer visits leaves at all.
  ///
  /// `slim` declares how the caller will run this pass. Slim passes
  /// re-derive stale nodes without refreshing their subtree fingerprints,
  /// so the first FULL pass after any slim pass drops every validity bit
  /// in the direction: a full pass trusting slim-era bits would compose
  /// parent cache keys from fingerprints describing content that no
  /// longer exists (and could resurrect a stale cache entry). Clearing
  /// the bits forces one scratch-speed rederivation that rebuilds every
  /// fingerprint bottom-up — sound, and paid at most once per cutover.
  bool begin_pass(const net::Topology& topo, Direction dir, int num_channels,
                  int own_slack, bool slim = false);

  ComposeCache& cache() { return cache_; }
  const ComposeCache& cache() const { return cache_; }

  /// Cache statistics accumulated since the previous call (or since
  /// construction): what the `harp.compose_cache.*` counters and the
  /// `compose_cache` trace event should attribute to the generation
  /// passes just finished. The cache's own totals stay monotone; the
  /// per-pass baseline lives here, with the object it describes, so a
  /// memo that is rebuilt or reset across a topology swap starts a fresh
  /// baseline — an engine-side snapshot would keep the old totals and
  /// wrap the unsigned deltas (or misattribute the accumulated history to
  /// the next pass).
  ComposeCache::Stats take_stats_delta();

  // Raw access for generate_interfaces (indexed by NodeId).
  std::vector<std::uint64_t>& fingerprints(Direction dir) {
    return fp_[static_cast<int>(dir)];
  }
  std::vector<std::uint8_t>& valid(Direction dir) {
    return valid_[static_cast<int>(dir)];
  }
  /// The pristine from-scratch result of the last generation pass in
  /// `dir`. Shares its node table copy-on-write with whatever the caller
  /// holds, so keeping it costs nothing — and the next pass starts from
  /// it and touches only stale nodes. Live-state drift (dynamic
  /// adjustments) never reaches it: the engine's writes clone first.
  InterfaceSet& last_result(Direction dir) {
    return last_[static_cast<int>(dir)];
  }

 private:
  ComposeCache cache_;
  std::vector<std::uint64_t> fp_[2];
  std::vector<std::uint8_t> valid_[2];
  InterfaceSet last_[2];
  struct PassKey {
    std::uint64_t topo_uid{0};
    int num_channels{0};
    int own_slack{0};
    bool set{false};
  };
  PassKey key_[2];
  ComposeCache::Stats stats_base_{};  // anchor of take_stats_delta()
  std::size_t full_threshold_{kDefaultFullThreshold};
  /// Set while the direction's fingerprints lag behind its content
  /// (some pass since the last full one ran slim); cleared by the next
  /// full begin_pass after it drops the validity bits.
  bool fp_stale_[2]{false, false};
};

}  // namespace harp::core
