// Top-down partition allocation (paper Sec. IV-C).
//
// Once the gateway holds the composed interface I_g, it pins every
// gateway-level component to a location in the Data sub-frame and the
// partition information flows down the tree: each node carves its own
// partitions into child partitions using the composition layout recorded
// during interface generation.
//
// Placement at the gateway follows the routing-path-compliant property of
// APaS [19]: the slotframe's data region is split into an uplink
// super-partition (from the left edge) and a downlink super-partition
// (right-aligned at the end of the data sub-frame). Within uplink, deeper
// layers come first (a sensor packet traverses layer L, then L-1, ...);
// within downlink, shallower layers come first. This keeps per-packet
// in-slotframe forwarding possible, bounding e2e latency near one
// slotframe.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "harp/resource.hpp"
#include "net/slotframe.hpp"
#include "net/topology.hpp"

namespace harp::core {

/// Partition lookup for every (direction, node, layer).
class PartitionTable {
 public:
  PartitionTable() = default;
  explicit PartitionTable(std::size_t num_nodes)
      : up_(num_nodes), down_(num_nodes) {}

  std::size_t num_nodes() const { return up_.size(); }

  /// Grows the table for newly joined nodes (no partitions).
  void resize(std::size_t num_nodes) {
    if (num_nodes > up_.size()) {
      up_.resize(num_nodes);
      down_.resize(num_nodes);
    }
  }

  /// P_{node,layer} for one direction; empty partition when absent.
  Partition get(Direction dir, NodeId node, int layer) const;
  void set(Direction dir, NodeId node, int layer, Partition p);
  void erase(Direction dir, NodeId node, int layer);

  /// Layers at which `node` holds a non-empty partition, ascending.
  std::vector<int> layers(Direction dir, NodeId node) const;

  /// All partitions of one direction, flattened as (node, layer, P).
  struct Row {
    NodeId node;
    int layer;
    Partition part;
  };
  std::vector<Row> rows(Direction dir) const;

  /// Deep equality over both directions; see InterfaceSet::operator==.
  friend bool operator==(const PartitionTable&, const PartitionTable&) =
      default;

 private:
  using PerNode = std::map<int, Partition>;
  std::vector<PerNode> up_;
  std::vector<PerNode> down_;
  std::vector<PerNode>& side(Direction dir) {
    return dir == Direction::kUp ? up_ : down_;
  }
  const std::vector<PerNode>& side(Direction dir) const {
    return dir == Direction::kUp ? up_ : down_;
  }
};

struct AllocationResult {
  PartitionTable partitions;
  /// Slots consumed by each super-partition (admission-control headroom =
  /// data_slots - up - down).
  SlotId uplink_slots{0};
  SlotId downlink_slots{0};
};

/// Places the gateway's per-layer components of one direction inside
/// [limit_begin, limit_end), preserving the compliant order (uplink:
/// deeper layers earlier, growing from limit_begin; downlink: shallower
/// layers earlier, flush against limit_end).
///
/// Movement is minimal: a layer keeps its position from `current` unless
/// the cursor forces it. On first placement (`current` empty) `gap` spare
/// slots are left after every layer, so later growth can extend a single
/// layer partition in place instead of shifting its neighbours — this is
/// what keeps gateway-level adjustments local (Table II's small message
/// counts). Returns nullopt when the components cannot fit the window.
std::optional<std::map<int, Partition>> place_gateway_side(
    const std::map<int, ResourceComponent>& comps, Direction dir,
    SlotId limit_begin, SlotId limit_end,
    const std::map<int, Partition>& current, SlotId gap);

/// Initial gateway layout for both directions, spreading the data
/// sub-frame's spare slots as inter-layer gaps (half to each direction).
/// Throws InfeasibleError when the components cannot be admitted.
std::pair<std::map<int, Partition>, std::map<int, Partition>>
initial_gateway_layout(const std::map<int, ResourceComponent>& up,
                       const std::map<int, ResourceComponent>& down,
                       const net::SlotframeConfig& frame);

/// Gateway re-placement ladder after a component change: anchored first
/// (existing partitions keep their position; the grown layer extends into
/// its gap), compact second (everything shifts). Returns nullopt when the
/// request must be rejected. `other_side` bounds the usable window.
std::optional<std::map<int, Partition>> replace_gateway_side(
    const std::map<int, ResourceComponent>& comps, Direction dir,
    const net::SlotframeConfig& frame,
    const std::map<int, Partition>& current_side,
    const std::map<int, Partition>& other_side);

/// Places both interface sets into the slotframe and derives the partition
/// of every subtree at every layer. Throws InfeasibleError when the two
/// super-partitions cannot fit the data sub-frame, or when a gateway
/// component needs more channels than available.
AllocationResult allocate_partitions(const net::Topology& topo,
                                     const InterfaceSet& up,
                                     const InterfaceSet& down,
                                     const net::SlotframeConfig& frame);

/// Validation oracle for the paper's isolation claim: every pair of
/// same-direction partitions at (node a, layer la) and (node b, layer lb)
/// must be disjoint unless one subtree contains the other and the layers
/// are equal (nested) — plus partitions of different layers never overlap,
/// and every child partition is contained in its parent's. Returns "" when
/// valid.
std::string validate_partitions(const net::Topology& topo,
                                const InterfaceSet& up,
                                const InterfaceSet& down,
                                const PartitionTable& parts,
                                const net::SlotframeConfig& frame);

}  // namespace harp::core
