// Distributed schedule generation (paper Sec. IV-D).
//
// After partition allocation each non-leaf node owns a dedicated
// scheduling partition P_{i,l(V_i)} (a row of consecutive cells) for the
// links to its children, and assigns cells inside it without any further
// coordination — isolation makes whatever it picks collision-free. The
// paper deploys Rate Monotonic: links carrying shorter-period (higher
// rate) tasks pick their cells first.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "harp/partition_alloc.hpp"
#include "harp/schedule.hpp"
#include "net/task.hpp"

namespace harp::core {

/// Per-link input to the in-partition scheduler.
struct LinkRequest {
  NodeId child{kNoNode};
  int demand{0};               // cells required
  std::uint32_t period{~0u};   // RM priority: smaller period = earlier cells
};

/// Assigns `requests` consecutive cell runs inside `part` in RM order
/// (period, then child id for determinism). Row-major within the
/// partition: slots first, then the next channel. Throws InfeasibleError
/// when total demand exceeds the partition capacity.
/// With `distribute_leftover`, cells of the partition beyond the summed
/// demand are handed out round-robin (RM order) as bonus capacity — the
/// node owns the whole partition, so idle cells may serve queue backlog
/// (Sec. V: "directly assigns more cells within the partition").
std::vector<std::pair<NodeId, std::vector<Cell>>> assign_cells_rm(
    const Partition& part, std::vector<LinkRequest> requests,
    bool distribute_leftover = false);

/// Minimum effective deadline among the tasks crossing each node's
/// uplink/downlink, used as the link's priority. With implicit deadlines
/// (deadline = period) this is classic Rate Monotonic; with constrained
/// deadlines it becomes Deadline Monotonic — the paper's
/// diverse-deadlines extension. Index = child node id; links with no
/// tasks get ~0u (lowest priority).
struct LinkPeriods {
  std::vector<std::uint32_t> up;
  std::vector<std::uint32_t> down;
  std::uint32_t get(NodeId child, Direction dir) const {
    return dir == Direction::kUp ? up[child] : down[child];
  }
};
LinkPeriods link_periods(const net::Topology& topo,
                         std::span<const net::Task> tasks);

/// Runs RM in every node's scheduling partition, for both directions, and
/// returns the complete network schedule. This is the "distributed" phase
/// executed node-locally in a real deployment; computing it centrally here
/// yields the identical result because each node's decision depends only
/// on its own partition and demands.
Schedule generate_schedule(const net::Topology& topo,
                           const net::TrafficMatrix& traffic,
                           const PartitionTable& parts,
                           const LinkPeriods& periods,
                           bool distribute_leftover = false);

}  // namespace harp::core
