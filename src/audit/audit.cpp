#include "audit/audit.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "harp/interface_gen.hpp"
#include "obs/obs.hpp"

namespace harp::audit {

namespace {

std::string node_layer_tag(NodeId node, int layer) {
  return "node " + std::to_string(node) + " layer " + std::to_string(layer);
}

}  // namespace

std::string check_partitions(const net::Topology& topo,
                             const core::InterfaceSet& up,
                             const core::InterfaceSet& down,
                             const core::PartitionTable& parts,
                             const net::SlotframeConfig& frame) {
  return core::validate_partitions(topo, up, down, parts, frame);
}

std::string check_interfaces(const net::Topology& topo,
                             const core::InterfaceSet& ifs, Direction dir) {
  if (ifs.num_nodes() != topo.size()) {
    return std::string(to_string(dir)) + " interface set sized for " +
           std::to_string(ifs.num_nodes()) + " nodes, topology has " +
           std::to_string(topo.size());
  }
  const std::string dtag = std::string(to_string(dir)) + " ";
  for (NodeId v = 0; v < topo.size(); ++v) {
    const int own = topo.link_layer(v);
    const auto& children = topo.children(v);
    for (int layer : ifs.layers(v)) {
      const core::ResourceComponent comp = ifs.component(v, layer);
      const auto& layout = ifs.layout(v, layer);
      // A subtree only spans layers from its own link layer downward.
      // (No upper bound: a node whose children departed legitimately
      // keeps deeper components as reservations.)
      if (layer < own) {
        return dtag + "component of " + node_layer_tag(v, layer) +
               " reported above the node's own link layer " +
               std::to_string(own);
      }
      if (layer == own) {
        if (!layout.empty()) {
          return dtag + "own-layer component of " + node_layer_tag(v, layer) +
                 " carries a composition layout";
        }
        continue;
      }
      // Composed layer: the layout must place exactly the children that
      // report a component at this layer, once each, dimension-exact,
      // disjoint, and inside the composite box.
      std::set<NodeId> placed;
      std::int64_t placed_area = 0;
      for (const packing::Placement& p : layout) {
        const auto child = static_cast<NodeId>(p.id);
        if (std::find(children.begin(), children.end(), child) ==
            children.end()) {
          return dtag + "layout of " + node_layer_tag(v, layer) +
                 " places node " + std::to_string(child) +
                 ", which is not a child";
        }
        if (!placed.insert(child).second) {
          return dtag + "layout of " + node_layer_tag(v, layer) +
                 " places child " + std::to_string(child) + " twice";
        }
        const core::ResourceComponent cc = ifs.component(child, layer);
        if (cc.empty()) {
          return dtag + "layout of " + node_layer_tag(v, layer) +
                 " places child " + std::to_string(child) +
                 ", which reports no component there";
        }
        if (p.w != cc.slots || p.h != cc.channels) {
          return dtag + "layout of " + node_layer_tag(v, layer) +
                 " places child " + std::to_string(child) + " as " +
                 std::to_string(p.w) + "x" + std::to_string(p.h) +
                 " but the child reports " + to_string(cc);
        }
        if (!p.inside(comp.slots, comp.channels)) {
          return dtag + "placement " + packing::to_string(p) +
                 " escapes the composite box " + to_string(comp) + " of " +
                 node_layer_tag(v, layer);
        }
        placed_area += p.area();
      }
      for (std::size_t i = 0; i < layout.size(); ++i) {
        for (std::size_t j = i + 1; j < layout.size(); ++j) {
          if (layout[i].overlaps(layout[j])) {
            return dtag + "placements " + packing::to_string(layout[i]) +
                   " and " + packing::to_string(layout[j]) + " of " +
                   node_layer_tag(v, layer) + " overlap";
          }
        }
      }
      if (placed_area > comp.cells()) {
        return dtag + "composite of " + node_layer_tag(v, layer) +
               " is not monotone: children occupy " +
               std::to_string(placed_area) + " cells, the composite offers " +
               std::to_string(comp.cells());
      }
      for (NodeId child : children) {
        if (!ifs.component(child, layer).empty() && !placed.contains(child)) {
          return dtag + "child " + std::to_string(child) +
                 " reports a component at layer " + std::to_string(layer) +
                 " but is missing from the layout of node " +
                 std::to_string(v);
        }
      }
    }
  }
  return {};
}

std::string check_schedule(const net::Topology& topo,
                           const net::TrafficMatrix& traffic,
                           const core::Schedule& schedule,
                           const net::SlotframeConfig& frame) {
  return core::validate_schedule(topo, traffic, schedule, frame);
}

std::string check_schedule_in_partitions(const net::Topology& topo,
                                         const core::PartitionTable& parts,
                                         const core::Schedule& schedule) {
  if (schedule.num_nodes() != topo.size()) {
    return "schedule sized for " + std::to_string(schedule.num_nodes()) +
           " nodes, topology has " + std::to_string(topo.size());
  }
  for (NodeId child = 1; child < topo.size(); ++child) {
    const NodeId parent = topo.parent(child);
    const int layer = topo.link_layer(parent);
    for (Direction dir : {Direction::kUp, Direction::kDown}) {
      const auto& cells = schedule.cells(child, dir);
      if (cells.empty()) continue;
      const core::Partition part = parts.get(dir, parent, layer);
      if (part.empty()) {
        return "link child=" + std::to_string(child) + " dir=" +
               std::string(to_string(dir)) +
               " holds cells but its parent " + std::to_string(parent) +
               " has no scheduling partition at layer " +
               std::to_string(layer);
      }
      for (Cell c : cells) {
        if (!part.contains(c)) {
          return "cell " + to_string(c) + " of link child=" +
                 std::to_string(child) + " dir=" +
                 std::string(to_string(dir)) +
                 " lies outside the scheduling partition " + to_string(part) +
                 " of parent " + std::to_string(parent);
        }
      }
    }
  }
  return {};
}

std::string check_engine_state(const net::Topology& topo,
                               const net::TrafficMatrix& traffic,
                               const net::SlotframeConfig& frame,
                               const core::InterfaceSet& up,
                               const core::InterfaceSet& down,
                               const core::PartitionTable& parts,
                               const core::Schedule& schedule) {
  if (auto err = check_interfaces(topo, up, Direction::kUp); !err.empty()) {
    return err;
  }
  if (auto err = check_interfaces(topo, down, Direction::kDown);
      !err.empty()) {
    return err;
  }
  if (auto err = check_partitions(topo, up, down, parts, frame);
      !err.empty()) {
    return err;
  }
  if (auto err = check_schedule(topo, traffic, schedule, frame);
      !err.empty()) {
    return err;
  }
  return check_schedule_in_partitions(topo, parts, schedule);
}

std::string check_restored(const core::InterfaceSet& ifs_before,
                           const core::InterfaceSet& ifs_after,
                           const core::PartitionTable& parts_before,
                           const core::PartitionTable& parts_after,
                           const core::Schedule& sched_before,
                           const core::Schedule& sched_after) {
  if (!(ifs_before == ifs_after)) {
    return "rollback failed to restore the interface set";
  }
  if (!(parts_before == parts_after)) {
    return "rollback failed to restore the partition table";
  }
  if (!(sched_before == sched_after)) {
    return "rollback failed to restore the schedule";
  }
  return {};
}

std::string check_compose_cache(const net::Topology& topo,
                                const net::TrafficMatrix& traffic,
                                Direction dir, int num_channels,
                                int own_slack,
                                const core::InterfaceSet& cached) {
  const core::InterfaceSet fresh = core::generate_interfaces(
      topo, traffic, dir, num_channels, own_slack);
  if (fresh == cached) return {};

  // Diverged: name the first offending node/layer for the report.
  const std::string dtag = std::string(to_string(dir)) + " ";
  for (NodeId v = 0; v < topo.size(); ++v) {
    const std::vector<int> fresh_layers = fresh.layers(v);
    const std::vector<int> cached_layers = cached.layers(v);
    if (fresh_layers != cached_layers) {
      return dtag + "memoized interface of node " + std::to_string(v) +
             " reports " + std::to_string(cached_layers.size()) +
             " layers, from-scratch reports " +
             std::to_string(fresh_layers.size());
    }
    for (int layer : fresh_layers) {
      if (fresh.component(v, layer) != cached.component(v, layer)) {
        return dtag + "memoized component of " + node_layer_tag(v, layer) +
               " is " + to_string(cached.component(v, layer)) +
               ", from-scratch is " + to_string(fresh.component(v, layer));
      }
      if (fresh.layout(v, layer) != cached.layout(v, layer)) {
        return dtag + "memoized layout of " + node_layer_tag(v, layer) +
               " diverges from the from-scratch composition";
      }
    }
  }
  return dtag + "memoized interface set diverges from from-scratch";
}

std::string check_queue_conservation(std::uint64_t generated,
                                     std::uint64_t delivered,
                                     std::uint64_t dropped,
                                     std::uint64_t backlog) {
  if (generated == delivered + dropped + backlog) return {};
  return "queue conservation violated: generated " +
         std::to_string(generated) + " != delivered " +
         std::to_string(delivered) + " + dropped " + std::to_string(dropped) +
         " + queued " + std::to_string(backlog);
}

// `node` only travels in the trace event, which HARP_OBS=OFF compiles out.
void fail(const char* check, const std::string& detail,
          [[maybe_unused]] NodeId node) {
  HARP_OBS_EVENT({.type = obs::EventType::kAuditFail,
                  .a = obs::TraceSink::global().register_phase(check),
                  .b = node});
  log::error() << "audit[" << check << "] " << detail;
  harp::fail(std::string("audit[") + check + "]: " + detail);
}

}  // namespace harp::audit
