// Invariant audit layer (docs/STATIC_ANALYSIS.md).
//
// HARP's headline claim is collision-freedom *by construction*: per-layer
// partitions are pairwise disjoint, child partitions nest inside their
// parents, and every parent schedules only inside its own rectangle. The
// code paths that maintain those invariants (incremental rebuild_links,
// AdjustTxn undo logs, the allocation-free simulator slot loop) are fast
// but no longer obviously correct, so this layer re-derives the invariants
// from first principles at every mutation point and fails loudly on the
// first divergence.
//
// Checks come in two halves:
//   * pure oracles (`check_*`) that take state and return "" or a
//     description of the first violation — unit-testable exactly like the
//     validators in src/harp, and
//   * the HARP_AUDIT macro, which runs an oracle and routes a non-empty
//     result through fail(): one `audit_fail` trace event on the src/obs
//     schema, then HARP_ASSERT semantics (throw, or abort under
//     HARP_ASSERT_ABORT).
//
// The whole layer is compile-time gated: the CMake option HARP_AUDIT
// (default ON except in Release builds) defines HARP_AUDIT_ENABLED; when
// it is 0 every HARP_AUDIT expands to a no-op and its arguments are never
// evaluated, so the Release hot path — and bench-gate — is untouched.
#pragma once

#include <cstdint>
#include <string>

#include "harp/partition_alloc.hpp"
#include "harp/resource.hpp"
#include "harp/schedule.hpp"
#include "net/slotframe.hpp"
#include "net/topology.hpp"
#include "net/traffic.hpp"

#ifndef HARP_AUDIT_ENABLED
#define HARP_AUDIT_ENABLED 1
#endif

namespace harp::audit {

/// Partition-table invariants: per-layer disjointness, child-in-parent
/// containment, presence. Delegates to the validate_partitions oracle.
std::string check_partitions(const net::Topology& topo,
                             const core::InterfaceSet& up,
                             const core::InterfaceSet& down,
                             const core::PartitionTable& parts,
                             const net::SlotframeConfig& frame);

/// Interface/composition consistency for one direction:
///   * components appear only at layers the subtree can span
///     (link_layer(node) .. subtree_depth(node));
///   * own-layer entries carry no layout (their interior is a schedule);
///   * a composed layer's layout places exactly the children that report a
///     component there, once each, with matching dimensions;
///   * placements are pairwise disjoint and inside the composite box
///     (which implies the monotonicity sum(child areas) <= composite area,
///     also checked explicitly).
std::string check_interfaces(const net::Topology& topo,
                             const core::InterfaceSet& ifs, Direction dir);

/// Schedule rules (collision-freedom, half-duplex, sufficiency,
/// containment). Delegates to the validate_schedule oracle.
std::string check_schedule(const net::Topology& topo,
                           const net::TrafficMatrix& traffic,
                           const core::Schedule& schedule,
                           const net::SlotframeConfig& frame);

/// Extension of the schedule rules with the partition discipline: every
/// cell of a link must lie inside the scheduling (own-layer) partition of
/// the parent that assigned it. This is the "parents schedule only inside
/// their own rectangle" half of the by-construction argument, which
/// validate_schedule alone cannot see.
std::string check_schedule_in_partitions(const net::Topology& topo,
                                         const core::PartitionTable& parts,
                                         const core::Schedule& schedule);

/// Everything above in one call — the engine's steady-state invariant.
std::string check_engine_state(const net::Topology& topo,
                               const net::TrafficMatrix& traffic,
                               const net::SlotframeConfig& frame,
                               const core::InterfaceSet& up,
                               const core::InterfaceSet& down,
                               const core::PartitionTable& parts,
                               const core::Schedule& schedule);

/// Rollback fidelity: after a rejected escalation the engine tables must
/// be byte-identical to the pre-climb snapshot (AdjustTxn's contract).
std::string check_restored(const core::InterfaceSet& ifs_before,
                           const core::InterfaceSet& ifs_after,
                           const core::PartitionTable& parts_before,
                           const core::PartitionTable& parts_after,
                           const core::Schedule& sched_before,
                           const core::Schedule& sched_after);

/// Memoization soundness: an interface set produced with the subtree
/// compose cache (harp/compose_cache.hpp) must be byte-identical to a
/// from-scratch regeneration under the same inputs — hits are pure
/// lookups, never approximations. Re-derives the whole set without the
/// cache (expensive: the engine samples it on power-of-two recomputation
/// counts under HARP_AUDIT) and reports the first diverging node/layer.
std::string check_compose_cache(const net::Topology& topo,
                                const net::TrafficMatrix& traffic,
                                Direction dir, int num_channels,
                                int own_slack,
                                const core::InterfaceSet& cached);

/// Simulator queue conservation: every generated packet is delivered,
/// dropped (queue overflow / route loss / purged with a departing device)
/// or still queued — checked at every slotframe boundary.
std::string check_queue_conservation(std::uint64_t generated,
                                     std::uint64_t delivered,
                                     std::uint64_t dropped,
                                     std::uint64_t backlog);

/// Reports a violation: emits one `audit_fail` trace event carrying the
/// interned check name, logs the detail, then fails via the HARP_ASSERT
/// path (throws harp::Error, or aborts under HARP_ASSERT_ABORT).
/// `check` must be a string with static storage duration.
[[noreturn]] void fail(const char* check, const std::string& detail,
                       NodeId node = kNoNode);

/// Runs one oracle result through fail() when non-empty.
inline void require(const char* check, const std::string& err,
                    NodeId node = kNoNode) {
  if (!err.empty()) fail(check, err, node);
}

}  // namespace harp::audit

/// Audit hook: evaluates the oracle expression and fails on a non-empty
/// result. Compiled out (arguments unevaluated) when HARP_AUDIT is OFF.
#if HARP_AUDIT_ENABLED
#define HARP_AUDIT(check, ...) ::harp::audit::require((check), (__VA_ARGS__))
/// Emits its argument verbatim in audit builds only — for bookkeeping
/// (counters, snapshots) that exists solely to feed a HARP_AUDIT check.
#define HARP_AUDIT_ONLY(...) __VA_ARGS__
#else
#define HARP_AUDIT(check, ...) ((void)0)
#define HARP_AUDIT_ONLY(...)
#endif
