// TrialPlan: expands one experiment description into concrete trials.
//
// A plan is an ordered list of TrialSpec entries — the unit of work the
// fleet executes (src/runner/fleet.hpp). Two axes compose:
//   * replications: N independent repeats of the same configuration, each
//     with its own derived seed;
//   * sweep points: a grid of configurations (schedulers x rates, slack
//     values, ...) identified by a dense point index the trial function
//     interprets.
// Seeds derive from (base_seed, replication) only — NOT from the global
// trial index — so every sweep point sees the same seed sequence. That is
// the paper's paired design (Sec. VII-A runs all four schedulers on the
// same 100 random topologies) and it makes sweep curves directly
// comparable: common random numbers, lower comparison variance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace harp::runner {

/// One unit of work: which sweep point, which replication, which seed.
struct TrialSpec {
  /// Dense global index: point * replications + replication. Result
  /// slots are keyed by this, making fleet output independent of
  /// execution order.
  std::size_t index{0};
  /// Sweep point this trial belongs to (0 when the plan has no sweep).
  std::size_t point{0};
  /// Replication number within the point.
  std::size_t replication{0};
  /// derive_seed(base_seed, replication): identical across points,
  /// decorrelated across replications.
  std::uint64_t seed{0};
};

/// Immutable expansion of (base_seed, sweep points, replications).
class TrialPlan {
 public:
  /// N replications of a single configuration.
  static TrialPlan replications(std::uint64_t base_seed, std::size_t n);

  /// `points` sweep configurations x `replications` repeats each, in
  /// point-major order.
  static TrialPlan grid(std::uint64_t base_seed, std::size_t points,
                        std::size_t replications);

  const std::vector<TrialSpec>& trials() const { return trials_; }
  std::size_t size() const { return trials_.size(); }
  std::size_t points() const { return points_; }
  std::size_t replications() const { return replications_; }
  std::uint64_t base_seed() const { return base_seed_; }

 private:
  TrialPlan(std::uint64_t base_seed, std::size_t points,
            std::size_t replications);

  std::uint64_t base_seed_;
  std::size_t points_;
  std::size_t replications_;
  std::vector<TrialSpec> trials_;
};

}  // namespace harp::runner
