#include "runner/fleet.hpp"

#include <chrono>
#include <sstream>

#include "runner/aggregate.hpp"
#include "runner/pool.hpp"

namespace harp::runner {
namespace {

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}

/// Deterministic digest of a registry: counters and gauges only, by
/// sorted name, serialized exactly (JSON dump preserves integer kinds).
std::uint64_t hash_metrics(std::uint64_t h, const obs::MetricsRegistry& reg) {
  for (const std::string& name : reg.names()) {
    if (const obs::Counter* c = reg.find_counter(name)) {
      h = hash_string(h, name);
      h = hash_string(h, obs::Json(c->value()).dump_string(0));
    } else if (const obs::Gauge* g = reg.find_gauge(name)) {
      h = hash_string(h, name);
      h = hash_string(h, obs::Json(g->value()).dump_string(0));
    }
    // Histograms deliberately excluded: wall-clock phase timings are not
    // reproducible run to run.
  }
  return h;
}

}  // namespace

void FleetResult::write_trace_jsonl(std::ostream& out) const {
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    if (contexts[i] == nullptr) continue;
    contexts[i]->trace.write_jsonl(out, static_cast<std::int64_t>(i));
  }
}

FleetResult run_fleet(const TrialPlan& plan, const FleetOptions& opts,
                      const TrialFn& fn) {
  const std::vector<TrialSpec>& trials = plan.trials();
  FleetResult res;
  res.jobs = opts.jobs == 0 ? WorkerPool::default_jobs() : opts.jobs;
  res.trial_results.resize(trials.size());
  res.contexts.resize(trials.size());

  const auto run_one = [&](std::size_t i) {
    auto ctx = std::make_unique<obs::Context>();
    ctx->timing = opts.timing;
    if (opts.trace) ctx->trace.enable(opts.trace_capacity);
    {
      obs::ScopedContext guard(*ctx);
      res.trial_results[i] = fn(trials[i]);
    }
    ctx->trace.disable();
    res.contexts[i] = std::move(ctx);
  };

  const auto start = std::chrono::steady_clock::now();
  if (res.jobs == 1) {
    // Inline on the caller thread: no pool, and the trial context nests
    // inside whatever context the caller has installed.
    for (std::size_t i = 0; i < trials.size(); ++i) run_one(i);
  } else {
    WorkerPool pool(res.jobs);
    pool.run(trials.size(), run_one);
  }
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& ctx : res.contexts) {
    if (ctx != nullptr) res.merged_metrics.merge(ctx->metrics);
  }
  res.aggregate = aggregate_results(res.trial_results);

  std::uint64_t h = kFnvOffset;
  for (const obs::Json& doc : res.trial_results) {
    h = hash_string(h, doc.dump_string(0));
  }
  h = hash_metrics(h, res.merged_metrics);
  res.fingerprint = h;
  return res;
}

}  // namespace harp::runner
