// Statistical aggregation of per-trial results.
//
// The fleet runner produces one JSON result document per trial (the same
// shape a single-run bench emits). This module reduces them to summary
// statistics: every numeric leaf is flattened to a dotted path
// ("latency.overall_mean", "per_node.3.p95", ...) and each path's
// across-trial sample vector becomes a {count, mean, stddev, min, max,
// median, p95, ci95} record. Output format: docs/RUNNER.md and
// docs/OBSERVABILITY.md "Fleet report format".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace harp::runner {

/// Summary of one sample vector. stddev is the sample (n-1) standard
/// deviation; median/p95 are nearest-rank; ci95 is the half-width of the
/// normal-approximation 95% confidence interval for the mean
/// (1.96 * stddev / sqrt(n); 0 for a single sample).
struct SummaryStats {
  std::size_t count{0};
  double mean{0.0};
  double stddev{0.0};
  double min{0.0};
  double max{0.0};
  double median{0.0};
  double p95{0.0};
  double ci95{0.0};
};

/// Computes SummaryStats over `samples` (empty input -> all zeros).
SummaryStats summarize(const std::vector<double>& samples);

/// {"count": ..., "mean": ..., ..., "ci95": ...} per the fleet schema.
obs::Json to_json(const SummaryStats& s);

/// Flattens every numeric leaf of `doc` into dotted paths appended to
/// `out` (objects recurse by key, arrays by index). Non-numeric leaves
/// are skipped.
void flatten_numeric(const obs::Json& doc, const std::string& prefix,
                     std::vector<std::pair<std::string, double>>& out);

/// Aggregates per-trial result documents: for every dotted path present
/// in at least one trial, a SummaryStats object over the trials that have
/// it. Returns an insertion-ordered object {path: summary, ...} (paths in
/// first-seen order, so reports diff cleanly).
obs::Json aggregate_results(const std::vector<obs::Json>& trial_results);

}  // namespace harp::runner
