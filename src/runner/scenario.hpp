// ScenarioSpec: a declarative, value-typed experiment description.
//
// One spec pins everything a trial needs except its seed: topology
// source (fixed tree or random-tree generator parameters), traffic
// profile, slotframe configuration, simulation options, run length, a
// scripted dynamics timeline, and the scheduler under test. Because a
// spec is a plain value, a TrialPlan can replicate it N times (each
// replication getting its own derived seed) or sweep a grid of variants,
// and run_scenario(spec, seed) is a pure function of its two arguments —
// the property every fleet determinism guarantee rests on.
//
// Two modes share the type:
//   * kSimulation: full HarpSimulation run — bootstrap, warmup, scripted
//     dynamics, measurement — reporting latency/loss/overhead (the
//     Fig. 9 / Fig. 10 / Table II shape);
//   * kScheduleBuild: build one schedule with the chosen scheduler and
//     report collision probability and cell counts (the Fig. 11 shape) —
//     no time simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/slotframe.hpp"
#include "net/topology_gen.hpp"
#include "obs/json.hpp"

namespace harp::runner {

struct ScenarioSpec {
  enum class Mode : std::uint8_t { kSimulation, kScheduleBuild };
  enum class TopologyKind : std::uint8_t { kFig1, kTestbed, kRandom };
  enum class SchedulerKind : std::uint8_t { kHarp, kRandom, kMsf, kLdsf };

  /// One scripted dynamics action, applied at `at_frame` measurement
  /// frames into the run (actions at the same frame apply in list order).
  struct Action {
    enum class Kind : std::uint8_t {
      kTaskRate,    // change_task_rate(a, value)
      kLinkDemand,  // change_link_demand(a, dir, value)
      kJoin,        // join_node(parent=a, up=value, down=b2 ? ... — see cpp
      kLeave,       // leave_node(a)
      kRoam,        // roam_node(a, new_parent=b)
    };
    Kind kind{Kind::kTaskRate};
    std::uint64_t at_frame{0};
    std::uint32_t a{0};      // task / node / parent id
    std::uint32_t b{0};      // secondary id (roam target)
    std::int32_t value{0};   // period_slots / cells / up_cells
    std::int32_t value2{0};  // down_cells (join)
    Direction dir{Direction::kUp};
  };

  std::string name = "scenario";
  Mode mode{Mode::kSimulation};

  // --- topology ---
  TopologyKind topology{TopologyKind::kTestbed};
  net::RandomTreeSpec random_tree;  // used when topology == kRandom

  // --- traffic: uniform echo tasks, one per non-gateway node ---
  std::uint32_t task_period_slots = 199;

  // --- slotframe + simulation options ---
  net::SlotframeConfig frame;
  double pdr = 1.0;
  std::size_t queue_capacity = 128;
  int own_slack = 0;

  // --- run length (simulation mode) ---
  std::uint64_t warmup_frames = 0;
  std::uint64_t measure_frames = 60;

  // --- scripted dynamics (simulation mode) ---
  std::vector<Action> dynamics;

  // --- scheduler under test (schedule-build mode) ---
  SchedulerKind scheduler{SchedulerKind::kHarp};
};

/// Executes one trial of `spec` with `seed` and returns its result
/// document (docs/RUNNER.md "Scenario results"). Deterministic in
/// (spec, seed); records into the caller's current obs context.
obs::Json run_scenario(const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace harp::runner
