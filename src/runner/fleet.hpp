// Fleet execution: a TrialPlan run across a WorkerPool with per-trial
// observability isolation and deterministic, order-independent output.
//
// Each trial executes under its own obs::Context (fresh metrics registry +
// trace sink, installed thread-locally for the duration of the trial), so
// concurrent trials never share instruments. Results and obs shards are
// stored by trial index; afterwards the fleet merges metric shards,
// aggregates the per-trial result documents (src/runner/aggregate.hpp)
// and fingerprints everything deterministic. Because trial seeds come
// from the plan and output slots are index-keyed, a fleet's
// trial_results, aggregate and fingerprint are bit-identical for every
// --jobs value (docs/RUNNER.md "Determinism").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "common/hash.hpp"
#include "obs/context.hpp"
#include "obs/json.hpp"
#include "runner/plan.hpp"

namespace harp::runner {

/// Produces one trial's result document. Runs on a worker thread with the
/// trial's private obs::Context installed; everything it touches must be
/// trial-local (no shared mutable state — the seed in `spec` is the only
/// sanctioned source of variation).
using TrialFn = std::function<obs::Json(const TrialSpec& spec)>;

struct FleetOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t jobs = 1;
  /// Enable per-trial trace sinks (shard-merged by write_trace_jsonl).
  bool trace = false;
  std::size_t trace_capacity = obs::TraceSink::kDefaultCapacity;
  /// Enable HARP_OBS_SCOPE phase timers inside trials.
  bool timing = false;
};

struct FleetResult {
  /// Per-trial result documents, indexed by TrialSpec::index.
  std::vector<obs::Json> trial_results;
  /// Per-trial obs shards (metrics + trace), same indexing.
  std::vector<std::unique_ptr<obs::Context>> contexts;
  /// All metric shards merged: counters/histograms summed, gauges summed
  /// (divide by trials for a mean — see MetricsRegistry::merge).
  obs::MetricsRegistry merged_metrics;
  /// aggregate_results() over trial_results: dotted path -> SummaryStats.
  obs::Json aggregate;
  /// FNV-1a over every trial's result document plus the merged counters
  /// and gauges. Histograms are excluded: they hold wall-clock timings,
  /// the one legitimately nondeterministic quantity. Equal fingerprints
  /// across --jobs values is the determinism contract (and what the
  /// runner tests assert).
  std::uint64_t fingerprint{0};
  double wall_seconds{0.0};
  std::size_t jobs{0};

  /// Shard-merged trace export: every trial's events in trial order, each
  /// line tagged with its trial index (docs/OBSERVABILITY.md).
  void write_trace_jsonl(std::ostream& out) const;
};

/// Runs every trial of `plan` through `fn` across `opts.jobs` workers.
/// Blocks until the fleet finishes; rethrows the first trial exception
/// (remaining trials are abandoned).
FleetResult run_fleet(const TrialPlan& plan, const FleetOptions& opts,
                      const TrialFn& fn);

/// FNV-1a 64-bit over a byte string — now shared repo-wide from
/// common/hash.hpp; re-exported here for existing callers.
using harp::fnv1a;
using harp::kFnvOffset;

}  // namespace harp::runner
