#include "runner/aggregate.hpp"

#include <algorithm>
#include <cmath>

namespace harp::runner {

SummaryStats summarize(const std::vector<double>& samples) {
  SummaryStats s;
  s.count = samples.size();
  if (samples.empty()) return s;

  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  const double n = static_cast<double>(samples.size());
  s.mean = sum / n;

  if (samples.size() > 1) {
    double sq = 0.0;
    for (double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / (n - 1.0));
    s.ci95 = 1.96 * s.stddev / std::sqrt(n);
  }

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto nearest_rank = [&](double p) {
    const double rank = std::ceil(p / 100.0 * n);
    const std::size_t i =
        rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(i, sorted.size() - 1)];
  };
  s.median = nearest_rank(50.0);
  s.p95 = nearest_rank(95.0);
  return s;
}

obs::Json to_json(const SummaryStats& s) {
  obs::Json out = obs::Json::object();
  out["count"] = static_cast<std::uint64_t>(s.count);
  out["mean"] = s.mean;
  out["stddev"] = s.stddev;
  out["min"] = s.min;
  out["max"] = s.max;
  out["median"] = s.median;
  out["p95"] = s.p95;
  out["ci95"] = s.ci95;
  return out;
}

void flatten_numeric(const obs::Json& doc, const std::string& prefix,
                     std::vector<std::pair<std::string, double>>& out) {
  if (doc.is_number()) {
    out.emplace_back(prefix, doc.number());
    return;
  }
  const auto join = [&](const std::string& key) {
    return prefix.empty() ? key : prefix + "." + key;
  };
  if (const obs::Json::Object* obj = doc.as_object()) {
    for (const obs::Json::Member& m : *obj) {
      flatten_numeric(m.second, join(m.first), out);
    }
  } else if (const obs::Json::Array* arr = doc.as_array()) {
    for (std::size_t i = 0; i < arr->size(); ++i) {
      flatten_numeric((*arr)[i], join(std::to_string(i)), out);
    }
  }
}

obs::Json aggregate_results(const std::vector<obs::Json>& trial_results) {
  // Collect samples per dotted path, preserving first-seen path order.
  std::vector<std::string> order;
  std::vector<std::vector<double>> samples;
  const auto slot_of = [&](const std::string& path) -> std::vector<double>& {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == path) return samples[i];
    }
    order.push_back(path);
    samples.emplace_back();
    return samples.back();
  };

  std::vector<std::pair<std::string, double>> flat;
  for (const obs::Json& doc : trial_results) {
    flat.clear();
    flatten_numeric(doc, "", flat);
    for (const auto& [path, value] : flat) slot_of(path).push_back(value);
  }

  obs::Json out = obs::Json::object();
  for (std::size_t i = 0; i < order.size(); ++i) {
    out[order[i]] = to_json(summarize(samples[i]));
  }
  return out;
}

}  // namespace harp::runner
