#include "runner/scenario.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "net/traffic.hpp"
#include "schedulers/scheduler.hpp"
#include "sim/harp_sim.hpp"

namespace harp::runner {

namespace {

// Every independent random decision of a scenario draws from its own
// derived sub-stream so adding a consumer never perturbs the others.
enum SeedStream : std::uint64_t {
  kTopologyStream = 0,
  kSimStream = 1,
  kSchedulerStream = 2,
};

net::Topology make_topology(const ScenarioSpec& spec, std::uint64_t seed) {
  switch (spec.topology) {
    case ScenarioSpec::TopologyKind::kFig1:
      return net::fig1_tree();
    case ScenarioSpec::TopologyKind::kTestbed:
      return net::testbed_tree();
    case ScenarioSpec::TopologyKind::kRandom: {
      Rng rng(derive_seed(seed, kTopologyStream));
      return net::random_tree(spec.random_tree, rng);
    }
  }
  throw InvalidArgument("unknown topology kind");
}

std::unique_ptr<sched::Scheduler> make_scheduler(
    ScenarioSpec::SchedulerKind kind) {
  switch (kind) {
    case ScenarioSpec::SchedulerKind::kHarp:
      return sched::make_harp_scheduler();
    case ScenarioSpec::SchedulerKind::kRandom:
      return sched::make_random_scheduler();
    case ScenarioSpec::SchedulerKind::kMsf:
      return sched::make_msf_scheduler();
    case ScenarioSpec::SchedulerKind::kLdsf:
      return sched::make_ldsf_scheduler();
  }
  throw InvalidArgument("unknown scheduler kind");
}

void apply_action(sim::HarpSimulation& sim, const ScenarioSpec& spec,
                  const ScenarioSpec::Action& act,
                  sim::MgmtPlane::Summary& total, std::size_t& actions) {
  sim::MgmtPlane::Summary s;
  switch (act.kind) {
    case ScenarioSpec::Action::Kind::kTaskRate:
      s = sim.change_task_rate(act.a,
                               static_cast<std::uint32_t>(act.value));
      break;
    case ScenarioSpec::Action::Kind::kLinkDemand:
      s = sim.change_link_demand(act.a, act.dir, act.value);
      break;
    case ScenarioSpec::Action::Kind::kJoin:
      s = sim.join_node(act.a, act.value, act.value2,
                        spec.task_period_slots)
              .summary;
      break;
    case ScenarioSpec::Action::Kind::kLeave:
      s = sim.leave_node(act.a);
      break;
    case ScenarioSpec::Action::Kind::kRoam:
      s = sim.roam_node(act.a, act.b);
      break;
  }
  ++actions;
  total.harp_messages += s.harp_messages;
  total.all_messages += s.all_messages;
  total.bytes += s.bytes;
  total.elapsed_seconds += s.elapsed_seconds;
  total.elapsed_slotframes += s.elapsed_slotframes;
}

obs::Json run_simulation(const ScenarioSpec& spec, std::uint64_t seed) {
  net::Topology topo = make_topology(spec, seed);
  std::vector<net::Task> tasks =
      net::uniform_echo_tasks(topo, spec.task_period_slots);

  sim::HarpSimulation::Options options;
  options.frame = spec.frame;
  options.pdr = spec.pdr;
  options.seed = derive_seed(seed, kSimStream);
  options.queue_capacity = spec.queue_capacity;
  options.own_slack = spec.own_slack;

  sim::HarpSimulation sim(std::move(topo), std::move(tasks), options);
  const AbsoluteSlot bootstrap_slots = sim.bootstrap();

  if (spec.warmup_frames > 0) {
    sim.run_frames(spec.warmup_frames);
    sim.data().metrics().clear();  // measure only the steady state
  }

  // Scripted dynamics interleave with measurement frames. Actions fire at
  // their at_frame offset (clamped to the measurement window), in stable
  // timeline order.
  std::vector<ScenarioSpec::Action> script = spec.dynamics;
  std::stable_sort(script.begin(), script.end(),
                   [](const ScenarioSpec::Action& x,
                      const ScenarioSpec::Action& y) {
                     return x.at_frame < y.at_frame;
                   });
  sim::MgmtPlane::Summary dyn_total;
  std::size_t dyn_actions = 0;
  std::uint64_t frame = 0;
  for (const ScenarioSpec::Action& act : script) {
    const std::uint64_t at = std::min(act.at_frame, spec.measure_frames);
    if (at > frame) {
      sim.run_frames(at - frame);
      frame = at;
    }
    apply_action(sim, spec, act, dyn_total, dyn_actions);
  }
  if (spec.measure_frames > frame) {
    sim.run_frames(spec.measure_frames - frame);
  }

  const sim::LatencyRecorder& m = sim.metrics();
  Stats overall;
  for (NodeId v = 1; v < sim.topology().size(); ++v) {
    overall.merge(m.node_latency(v));
  }

  obs::Json out = obs::Json::object();
  out["mode"] = "simulation";
  out["nodes"] = static_cast<std::uint64_t>(sim.topology().size());
  out["bootstrap_slots"] = bootstrap_slots;
  obs::Json& latency = out["latency"];
  latency = obs::Json::object();
  latency["mean_s"] = overall.empty() ? 0.0 : overall.mean();
  latency["median_s"] = overall.empty() ? 0.0 : overall.median();
  latency["p95_s"] = overall.empty() ? 0.0 : overall.percentile(95.0);
  out["generated"] = m.total_generated();
  out["delivered"] = m.total_delivered();
  out["dropped"] = m.total_dropped();
  out["deadline_misses"] = m.total_deadline_misses();
  out["delivery_ratio"] =
      m.total_generated() == 0
          ? 0.0
          : static_cast<double>(m.total_delivered()) /
                static_cast<double>(m.total_generated());
  obs::Json& dyn = out["dynamics"];
  dyn = obs::Json::object();
  dyn["actions"] = static_cast<std::uint64_t>(dyn_actions);
  dyn["harp_messages"] = static_cast<std::uint64_t>(dyn_total.harp_messages);
  dyn["all_messages"] = static_cast<std::uint64_t>(dyn_total.all_messages);
  dyn["bytes"] = static_cast<std::uint64_t>(dyn_total.bytes);
  dyn["seconds"] = dyn_total.elapsed_seconds;
  return out;
}

obs::Json run_schedule_build(const ScenarioSpec& spec, std::uint64_t seed) {
  net::Topology topo = make_topology(spec, seed);
  const std::vector<net::Task> tasks =
      net::uniform_echo_tasks(topo, spec.task_period_slots);
  const net::TrafficMatrix traffic =
      net::derive_traffic(topo, tasks, spec.frame);

  const std::unique_ptr<sched::Scheduler> scheduler =
      make_scheduler(spec.scheduler);
  Rng rng(derive_seed(seed, kSchedulerStream));
  const core::Schedule schedule =
      scheduler->build(topo, traffic, spec.frame, rng);

  obs::Json out = obs::Json::object();
  out["mode"] = "schedule_build";
  out["scheduler"] = scheduler->name();
  out["nodes"] = static_cast<std::uint64_t>(topo.size());
  out["total_cells"] = static_cast<std::uint64_t>(schedule.total_cells());
  out["collision_probability"] =
      sched::collision_probability(topo, schedule);
  return out;
}

}  // namespace

obs::Json run_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  spec.frame.validate();
  switch (spec.mode) {
    case ScenarioSpec::Mode::kSimulation:
      return run_simulation(spec, seed);
    case ScenarioSpec::Mode::kScheduleBuild:
      return run_schedule_build(spec, seed);
  }
  throw InvalidArgument("unknown scenario mode");
}

}  // namespace harp::runner
