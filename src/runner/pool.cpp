#include "runner/pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace harp::runner {

WorkerPool::WorkerPool(std::size_t jobs) {
  if (jobs == 0) throw InvalidArgument("WorkerPool needs at least one job");
  threads_.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  batch_ready_.notify_all();
  for (Thread& t : threads_) t.join();
}

std::size_t WorkerPool::default_jobs() { return hardware_threads(); }

void WorkerPool::work_off_batch(
    std::size_t slot, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t count, std::size_t block) {
  // Hot path: claim a contiguous block of indices with one fetch-add each
  // (block size 1 for plain run/run_indexed); no lock until the batch
  // drains or aborts.
  while (!abort_.load(std::memory_order_relaxed)) {
    const std::size_t begin = next_.fetch_add(block, std::memory_order_relaxed);
    if (begin >= count) break;
    const std::size_t end = std::min(begin + block, count);
    for (std::size_t i = begin; i < end; ++i) {
      if (abort_.load(std::memory_order_relaxed)) return;
      try {
        fn(slot, i);
      } catch (...) {
        MutexLock lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
        abort_.store(true, std::memory_order_relaxed);
      }
    }
  }
}

void WorkerPool::worker_loop(std::size_t slot) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn;
    std::size_t count;
    std::size_t block;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) batch_ready_.wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
      // Copy the batch parameters out while the dispatch lock is held:
      // run_blocked keeps them stable until every worker is idle again,
      // but the claim loop itself must not touch guarded state.
      fn = fn_;
      count = count_;
      block = block_;
      ++busy_;
    }
    work_off_batch(slot, *fn, count, block);
    {
      MutexLock lock(mu_);
      --busy_;
    }
    batch_done_.notify_all();
  }
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  run_indexed(count,
              [&fn](std::size_t /*slot*/, std::size_t index) { fn(index); });
}

void WorkerPool::run_indexed(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn) {
  run_blocked(count, 1, fn);
}

void WorkerPool::run_blocked(
    std::size_t count, std::size_t block,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (block == 0) throw InvalidArgument("block size must be positive");
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    count_ = count;
    block_ = block;
    first_error_ = nullptr;
    abort_.store(false, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  batch_ready_.notify_all();

  MutexLock lock(mu_);
  while (busy_ != 0 || (!abort_.load(std::memory_order_relaxed) &&
                        next_.load(std::memory_order_relaxed) < count_)) {
    batch_done_.wait(mu_);
  }
  fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace harp::runner
