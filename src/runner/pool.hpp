// WorkerPool: fixed-size thread pool for embarrassingly-parallel batches.
//
// The experiment runner's execution engine. A pool owns `jobs` persistent
// worker threads; `run(count, fn)` executes fn(0..count-1) across them and
// returns when every index has finished. Indices are claimed with a single
// atomic fetch-add (no per-task locking, no allocation after dispatch), so
// the scheduling order is nondeterministic — which is why everything the
// runner computes is keyed by trial index, never by completion order
// (docs/RUNNER.md "Determinism").
//
// Exception contract: the first exception thrown by any fn invocation is
// captured, remaining unclaimed indices are abandoned, and run() rethrows
// it on the calling thread once all workers are idle again. The pool stays
// usable for further batches afterwards.
//
// Locking discipline (docs/STATIC_ANALYSIS.md "Concurrency analysis"):
// one harp::Mutex (rank kWorkerPool) guards the batch handshake; the
// per-index claim stays lock-free on `next_`/`abort_`. The batch
// parameters are copied out under the lock when a worker joins a batch
// and passed by value into the claim loop, so the hot path reads no
// guarded state.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace harp::runner {

class WorkerPool {
 public:
  /// Spawns `jobs` worker threads (at least 1; a 1-job pool is a valid,
  /// if pointless, way to serialize a batch).
  explicit WorkerPool(std::size_t jobs);
  /// Joins all workers. Must not be called while run() is in flight.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t jobs() const { return threads_.size(); }

  /// Runs fn(i) for every i in [0, count) across the pool and blocks until
  /// all claimed indices have finished. Rethrows the first exception any
  /// invocation threw. Not reentrant: one batch at a time per pool.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Like run(), but fn also receives the executing worker's slot in
  /// [0, jobs()). Slots let callers keep per-worker state (scratch arenas,
  /// obs::Context) without thread_local or locking: a slot runs at most one
  /// fn invocation at a time, and batch completion establishes
  /// happens-before between everything the workers wrote and the caller.
  void run_indexed(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Like run_indexed(), but workers claim contiguous blocks of `block`
  /// indices per atomic fetch-add instead of one index at a time. For
  /// many small tasks over index-adjacent data — per-node subtree
  /// compositions above all (docs/KERNELS.md "Composition batching") —
  /// this both amortizes the claim to 1/block fetch-adds and keeps each
  /// worker walking neighboring nodes, which are also neighbors in the
  /// interface pool. Completion-order nondeterminism is unchanged: every
  /// index still runs exactly once, on exactly one worker.
  void run_blocked(std::size_t count, std::size_t block,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Hardware concurrency with a sane floor (>= 1).
  static std::size_t default_jobs();

 private:
  void worker_loop(std::size_t slot);
  /// Claims and runs indices of the current batch. Parameters are the
  /// batch state copied out under mu_ by worker_loop; only the atomics
  /// are shared, so the claim loop needs no lock.
  void work_off_batch(std::size_t slot,
                      const std::function<void(std::size_t, std::size_t)>& fn,
                      std::size_t count, std::size_t block)
      HARP_EXCLUDES(mu_);

  Mutex mu_{LockRank::kWorkerPool, "runner.WorkerPool.mu"};
  CondVar batch_ready_;
  CondVar batch_done_;
  std::vector<Thread> threads_;

  // Batch handshake state.
  const std::function<void(std::size_t, std::size_t)>* fn_
      HARP_GUARDED_BY(mu_){nullptr};
  std::size_t count_ HARP_GUARDED_BY(mu_){0};
  std::size_t block_ HARP_GUARDED_BY(mu_){1};  // indices per fetch-add
  std::uint64_t generation_ HARP_GUARDED_BY(mu_){0};  // workers wake once
  std::size_t busy_ HARP_GUARDED_BY(mu_){0};  // workers inside the batch
  bool stop_ HARP_GUARDED_BY(mu_){false};
  std::exception_ptr first_error_
      HARP_GUARDED_BY(mu_);  // first failure of the current batch

  // Hot path: workers claim indices lock-free.
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> abort_{false};
};

}  // namespace harp::runner
