#include "runner/plan.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace harp::runner {

TrialPlan::TrialPlan(std::uint64_t base_seed, std::size_t points,
                     std::size_t replications)
    : base_seed_(base_seed), points_(points), replications_(replications) {
  if (points == 0) throw InvalidArgument("TrialPlan needs at least one point");
  if (replications == 0) {
    throw InvalidArgument("TrialPlan needs at least one replication");
  }
  trials_.reserve(points * replications);
  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t r = 0; r < replications; ++r) {
      trials_.push_back(TrialSpec{
          .index = p * replications + r,
          .point = p,
          .replication = r,
          .seed = derive_seed(base_seed, r),
      });
    }
  }
}

TrialPlan TrialPlan::replications(std::uint64_t base_seed, std::size_t n) {
  return TrialPlan(base_seed, 1, n);
}

TrialPlan TrialPlan::grid(std::uint64_t base_seed, std::size_t points,
                          std::size_t replications) {
  return TrialPlan(base_seed, points, replications);
}

}  // namespace harp::runner
