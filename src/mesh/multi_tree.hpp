// MultiTreeHarp: HARP on non-tree topologies, divide and conquer.
//
// The data sub-frame is split into two disjoint slot regions, one per
// decomposed tree; an independent HarpEngine manages each region over its
// own tree. Because the regions share no slots, the two hierarchies can
// never collide — even though every node appears in both trees. Each
// device's traffic is assigned to one tree (primary by default) and can
// FAIL OVER to the other at runtime: release on one hierarchy, request on
// the other — no topology renegotiation, no waiting for the routing layer
// to reconverge. This implements the paper's future-work sketch and gives
// the system fast reroute under interference.
#pragma once

#include <vector>

#include "harp/engine.hpp"
#include "mesh/decompose.hpp"
#include "mesh/mesh.hpp"
#include "net/task.hpp"

namespace harp::mesh {

enum class Tree : std::uint8_t { kPrimary = 0, kSecondary = 1 };

const char* to_string(Tree t);

class MultiTreeHarp {
 public:
  struct Options {
    net::SlotframeConfig frame;
    /// Fraction of the data sub-frame reserved for the secondary region.
    double secondary_share = 0.35;
    int own_slack = 0;
    /// Hot-standby floor: cells pre-reserved on EVERY secondary-tree link
    /// at bootstrap. 0 = cold standby (first failover pays the full
    /// hierarchy build-out); 1+ = failovers of modest flows resolve with
    /// a handful of local messages.
    int standby_demand = 0;
  };

  /// Decomposes the mesh and bootstraps both hierarchies: the primary
  /// carries all tasks, the secondary starts empty (pure standby).
  /// Throws InfeasibleError when the primary region cannot admit the
  /// task set.
  MultiTreeHarp(const MeshGraph& mesh, std::vector<net::Task> tasks,
                Options options);

  const net::Topology& topology(Tree t) const {
    return engine(t).topology();
  }
  const core::HarpEngine& engine(Tree t) const {
    return t == Tree::kPrimary ? primary_ : secondary_;
  }
  double uplink_diversity() const { return diversity_; }

  /// Which tree currently carries `node`'s traffic.
  Tree assignment(NodeId node) const;

  /// The slot region [begin, end) of a tree within the global slotframe.
  std::pair<SlotId, SlotId> region(Tree t) const;

  /// The tree's schedule translated into GLOBAL slotframe coordinates.
  core::Schedule global_schedule(Tree t) const;

  struct FailoverReport {
    bool satisfied{false};
    /// HARP messages exchanged across both hierarchies.
    std::size_t messages{0};
    /// Links whose reservation changed.
    std::size_t links_touched{0};
  };

  /// Moves `node`'s traffic to the other tree (and back with another
  /// call). On rejection every change is rolled back and the node stays
  /// where it was.
  FailoverReport failover(NodeId node);

  /// Cross-hierarchy validation: both engines' invariants plus region
  /// disjointness. Returns "" when consistent.
  std::string validate() const;

 private:
  MultiTreeHarp(Decomposition d, std::vector<net::Task> tasks,
                Options options);

  struct Applied {
    Tree tree;
    NodeId child;
    Direction dir;
    int old_cells;
  };
  core::HarpEngine& engine_mut(Tree t) {
    return t == Tree::kPrimary ? primary_ : secondary_;
  }
  net::TrafficMatrix desired_traffic(Tree t) const;
  bool apply_diff(Tree t, const net::TrafficMatrix& desired,
                  std::vector<Applied>& undo_log, std::size_t& messages,
                  std::size_t& links);
  void rollback(const std::vector<Applied>& undo_log);

  Options options_;
  double diversity_{0.0};
  std::vector<net::Task> tasks_;
  std::vector<Tree> assignment_;
  SlotId split_{0};  // primary region = [0, split_), secondary after
  core::HarpEngine primary_;
  core::HarpEngine secondary_;
};

}  // namespace harp::mesh
