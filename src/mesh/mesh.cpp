#include "mesh/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace harp::mesh {

MeshGraph::MeshGraph(std::size_t num_nodes) : adjacency_(num_nodes) {
  if (num_nodes == 0) throw InvalidArgument("mesh needs at least the gateway");
}

void MeshGraph::add_link(NodeId a, NodeId b, double quality) {
  if (a >= size() || b >= size() || a == b) {
    throw InvalidArgument("invalid link endpoints");
  }
  if (quality <= 0.0 || quality > 1.0) {
    throw InvalidArgument("quality must be in (0,1]");
  }
  const auto update = [&](NodeId from, NodeId to) {
    for (Neighbor& n : adjacency_[from]) {
      if (n.node == to) {
        n.quality = quality;
        return true;
      }
    }
    adjacency_[from].push_back({to, quality});
    return false;
  };
  const bool existed = update(a, b);
  update(b, a);
  if (!existed) ++num_links_;
}

double MeshGraph::quality(NodeId a, NodeId b) const {
  HARP_ASSERT(a < size() && b < size());
  for (const Neighbor& n : adjacency_[a]) {
    if (n.node == b) return n.quality;
  }
  return 0.0;
}

const std::vector<MeshGraph::Neighbor>& MeshGraph::neighbors(
    NodeId node) const {
  HARP_ASSERT(node < size());
  return adjacency_[node];
}

bool MeshGraph::connected() const {
  std::vector<bool> seen(size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const Neighbor& n : adjacency_[v]) {
      if (!seen[n.node]) {
        seen[n.node] = true;
        ++reached;
        stack.push_back(n.node);
      }
    }
  }
  return reached == size();
}

MeshGraph random_mesh(std::size_t num_nodes, Rng& rng) {
  MeshGraph mesh(num_nodes);
  if (num_nodes == 1) return mesh;

  // Scatter nodes; the gateway sits at the center.
  std::vector<std::pair<double, double>> pos(num_nodes);
  pos[0] = {0.5, 0.5};
  for (std::size_t v = 1; v < num_nodes; ++v) {
    pos[v] = {rng.uniform(), rng.uniform()};
  }

  // Radius scaled for average degree ~5: pi r^2 n ~ 5.
  const double radius = std::sqrt(
      5.0 / (3.14159265358979 * static_cast<double>(num_nodes)));
  const auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = pos[a].first - pos[b].first;
    const double dy = pos[a].second - pos[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  for (std::size_t a = 0; a < num_nodes; ++a) {
    for (std::size_t b = a + 1; b < num_nodes; ++b) {
      const double d = dist(a, b);
      if (d <= radius) {
        // Quality decays with distance, floor 0.5 at the radius edge.
        mesh.add_link(static_cast<NodeId>(a), static_cast<NodeId>(b),
                      1.0 - 0.5 * d / radius);
      }
    }
  }

  // Guarantee connectivity: link every unreached node to its nearest
  // reached neighbor (long shot, low quality).
  std::vector<bool> seen(num_nodes, false);
  const auto flood = [&]() {
    std::fill(seen.begin(), seen.end(), false);
    std::vector<NodeId> stack{0};
    seen[0] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const auto& n : mesh.neighbors(v)) {
        if (!seen[n.node]) {
          seen[n.node] = true;
          stack.push_back(n.node);
        }
      }
    }
  };
  flood();
  for (std::size_t v = 1; v < num_nodes; ++v) {
    if (seen[v]) continue;
    std::size_t best = 0;
    for (std::size_t u = 0; u < num_nodes; ++u) {
      if (seen[u] && dist(v, u) < dist(v, best)) best = u;
    }
    mesh.add_link(static_cast<NodeId>(v), static_cast<NodeId>(best), 0.5);
    flood();
  }
  HARP_ASSERT(mesh.connected());
  return mesh;
}

}  // namespace harp::mesh
