// Mesh-to-trees decomposition (divide and conquer, per the paper's
// future-work sketch).
//
// From the connectivity mesh we extract two spanning trees rooted at the
// gateway:
//   * PRIMARY — the routing tree an RPL-like layer would form: each node
//     picks the parent minimizing (hops to gateway, then -quality);
//   * SECONDARY — the same construction with every primary link heavily
//     penalized, yielding a maximally link-disjoint fallback tree.
// MultiTreeHarp then runs HARP independently on each tree in disjoint
// slot regions, so a node can fail over to its secondary parent without
// renegotiating anything in the primary hierarchy.
#pragma once

#include "mesh/mesh.hpp"
#include "net/topology.hpp"

namespace harp::mesh {

struct Decomposition {
  net::Topology primary;
  net::Topology secondary;
  /// Fraction of non-gateway nodes whose secondary uplink uses a
  /// different link than their primary uplink (1.0 = fully link-disjoint
  /// first hops).
  double uplink_diversity{0.0};
};

/// Extracts the two trees. Throws InvalidArgument when the mesh is not
/// connected. Node ids are shared across mesh and both trees.
Decomposition decompose(const MeshGraph& mesh);

}  // namespace harp::mesh
