#include "mesh/decompose.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace harp::mesh {
namespace {

/// Primary tree: RPL-like shortest-path extraction minimizing (hops,
/// then -total quality). Returns the parent vector.
std::vector<NodeId> extract_primary(const MeshGraph& mesh) {
  struct Cost {
    int hops;
    double neg_quality;
    bool operator>(const Cost& o) const {
      if (hops != o.hops) return hops > o.hops;
      return neg_quality > o.neg_quality;
    }
  };
  const std::size_t n = mesh.size();
  std::vector<Cost> best(n, {std::numeric_limits<int>::max(), 0.0});
  std::vector<NodeId> parent(n, kNoNode);
  using Item = std::pair<Cost, NodeId>;
  const auto cmp = [](const Item& a, const Item& b) {
    return a.first > b.first;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> queue(cmp);
  best[0] = {0, 0.0};
  queue.push({best[0], 0});

  while (!queue.empty()) {
    const auto [cost, v] = queue.top();
    queue.pop();
    if (cost.hops != best[v].hops ||
        cost.neg_quality != best[v].neg_quality) {
      continue;  // stale entry
    }
    for (const auto& nb : mesh.neighbors(v)) {
      const Cost next{cost.hops + 1, cost.neg_quality - nb.quality};
      if (best[nb.node] > next) {
        best[nb.node] = next;
        parent[nb.node] = v;
        queue.push({next, nb.node});
      }
    }
  }
  for (NodeId v = 1; v < n; ++v) HARP_ASSERT(parent[v] != kNoNode);
  parent[0] = kNoNode;
  return parent;
}

/// Hop distance to the gateway over the mesh (BFS).
std::vector<int> hop_distance(const MeshGraph& mesh) {
  std::vector<int> dist(mesh.size(), -1);
  std::vector<NodeId> bfs{0};
  dist[0] = 0;
  for (std::size_t i = 0; i < bfs.size(); ++i) {
    for (const auto& nb : mesh.neighbors(bfs[i])) {
      if (dist[nb.node] < 0) {
        dist[nb.node] = dist[bfs[i]] + 1;
        bfs.push_back(nb.node);
      }
    }
  }
  return dist;
}

/// Secondary tree: explicit backup-parent selection. Each node picks, as
/// its fallback uplink, a neighbor DIFFERENT from its primary parent
/// whenever one is admissible; admissible parents are strictly smaller in
/// (hop distance, id) lexicographic order, which makes the parent graph
/// acyclic by construction (same-depth adoptions are allowed toward
/// smaller ids only).
std::vector<NodeId> extract_secondary(const MeshGraph& mesh,
                                      const std::vector<NodeId>& primary) {
  const std::vector<int> dist = hop_distance(mesh);
  std::vector<NodeId> parent(mesh.size(), kNoNode);
  for (NodeId v = 1; v < mesh.size(); ++v) {
    NodeId best = kNoNode;
    double best_quality = -1.0;
    bool best_diverse = false;
    for (const auto& nb : mesh.neighbors(v)) {
      const bool admissible =
          dist[nb.node] < dist[v] ||
          (dist[nb.node] == dist[v] && nb.node < v);
      if (!admissible) continue;
      const bool diverse = nb.node != primary[v];
      // Diversity dominates; quality breaks ties.
      if (best == kNoNode || (diverse && !best_diverse) ||
          (diverse == best_diverse && nb.quality > best_quality)) {
        best = nb.node;
        best_quality = nb.quality;
        best_diverse = diverse;
      }
    }
    // The primary parent is always admissible (one hop shallower), so a
    // candidate exists.
    HARP_ASSERT(best != kNoNode);
    parent[v] = best;
  }
  return parent;
}

}  // namespace

Decomposition decompose(const MeshGraph& mesh) {
  if (!mesh.connected()) {
    throw InvalidArgument("mesh is not connected to the gateway");
  }

  const std::vector<NodeId> primary_parent = extract_primary(mesh);
  const std::vector<NodeId> secondary_parent =
      extract_secondary(mesh, primary_parent);

  Decomposition out{net::TopologyBuilder::build_from(primary_parent),
                    net::TopologyBuilder::build_from(secondary_parent)};

  std::size_t diverse = 0;
  for (NodeId v = 1; v < mesh.size(); ++v) {
    if (primary_parent[v] != secondary_parent[v]) ++diverse;
  }
  out.uplink_diversity =
      mesh.size() > 1
          ? static_cast<double>(diverse) / static_cast<double>(mesh.size() - 1)
          : 0.0;
  return out;
}

}  // namespace harp::mesh
