#include "mesh/multi_tree.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "net/traffic.hpp"

namespace harp::mesh {
namespace {

net::SlotframeConfig region_frame(const net::SlotframeConfig& frame,
                                  SlotId data_slots) {
  net::SlotframeConfig out = frame;
  out.data_slots = data_slots;
  return out;
}

SlotId compute_split(const MultiTreeHarp::Options& options) {
  options.frame.validate();
  if (options.secondary_share <= 0.0 || options.secondary_share >= 1.0) {
    throw InvalidArgument("secondary_share must be in (0,1)");
  }
  const auto secondary = static_cast<SlotId>(
      static_cast<double>(options.frame.data_slots) *
      options.secondary_share);
  if (secondary == 0 || secondary >= options.frame.data_slots) {
    throw InvalidArgument("data sub-frame too small to split");
  }
  return options.frame.data_slots - secondary;
}

}  // namespace

const char* to_string(Tree t) {
  return t == Tree::kPrimary ? "primary" : "secondary";
}

MultiTreeHarp::MultiTreeHarp(const MeshGraph& mesh,
                             std::vector<net::Task> tasks, Options options)
    : MultiTreeHarp(decompose(mesh), std::move(tasks), options) {}

MultiTreeHarp::MultiTreeHarp(Decomposition d, std::vector<net::Task> tasks,
                             Options options)
    : options_(options),
      diversity_(d.uplink_diversity),
      tasks_(std::move(tasks)),
      assignment_(d.primary.size(), Tree::kPrimary),
      split_(compute_split(options)),
      primary_(d.primary,
               net::derive_traffic(d.primary, tasks_,
                                   region_frame(options.frame, split_)),
               region_frame(options.frame, split_), tasks_,
               {.own_slack = options.own_slack}),
      secondary_(d.secondary,
                 [&] {
                   net::TrafficMatrix standby(d.secondary.size());
                   for (NodeId v = 1; v < d.secondary.size(); ++v) {
                     standby.set_uplink(v, options.standby_demand);
                     standby.set_downlink(v, options.standby_demand);
                   }
                   return standby;
                 }(),
                 region_frame(options.frame,
                              options.frame.data_slots - split_),
                 tasks_, {.own_slack = options.own_slack}) {
  if (options.standby_demand < 0) {
    throw InvalidArgument("standby_demand must be >= 0");
  }
}

Tree MultiTreeHarp::assignment(NodeId node) const {
  HARP_ASSERT(node < assignment_.size());
  return assignment_[node];
}

std::pair<SlotId, SlotId> MultiTreeHarp::region(Tree t) const {
  return t == Tree::kPrimary
             ? std::pair<SlotId, SlotId>{0, split_}
             : std::pair<SlotId, SlotId>{split_, options_.frame.data_slots};
}

core::Schedule MultiTreeHarp::global_schedule(Tree t) const {
  core::Schedule out = engine(t).schedule();
  if (t == Tree::kSecondary) {
    core::Schedule shifted(out.num_nodes());
    for (NodeId child = 1; child < out.num_nodes(); ++child) {
      for (Direction dir : {Direction::kUp, Direction::kDown}) {
        std::vector<Cell> cells = out.cells(child, dir);
        for (Cell& c : cells) c.slot += split_;
        shifted.set_cells(child, dir, std::move(cells));
      }
    }
    return shifted;
  }
  return out;
}

net::TrafficMatrix MultiTreeHarp::desired_traffic(Tree t) const {
  std::vector<net::Task> subset;
  for (const net::Task& task : tasks_) {
    if (assignment_[task.source] == t) subset.push_back(task);
  }
  const auto [begin, end] = region(t);
  net::TrafficMatrix m = net::derive_traffic(
      topology(t), subset, region_frame(options_.frame, end - begin));
  if (t == Tree::kSecondary && options_.standby_demand > 0) {
    // Keep the hot-standby floor on every link.
    for (NodeId v = 1; v < m.num_nodes(); ++v) {
      for (Direction dir : {Direction::kUp, Direction::kDown}) {
        m.set_demand(v, dir,
                     std::max(m.demand(v, dir), options_.standby_demand));
      }
    }
  }
  return m;
}

bool MultiTreeHarp::apply_diff(Tree t, const net::TrafficMatrix& desired,
                               std::vector<Applied>& undo_log,
                               std::size_t& messages, std::size_t& links) {
  core::HarpEngine& eng = engine_mut(t);
  for (NodeId v : eng.topology().nodes_bottom_up()) {
    if (v == net::Topology::gateway()) continue;
    for (Direction dir : {Direction::kUp, Direction::kDown}) {
      const int want = desired.demand(v, dir);
      const int cur = eng.traffic().demand(v, dir);
      if (want == cur) continue;
      const auto r = eng.request_demand(v, dir, want);
      if (!r.satisfied) return false;
      undo_log.push_back({t, v, dir, cur});
      messages += r.messages.size();
      ++links;
    }
  }
  return true;
}

void MultiTreeHarp::rollback(const std::vector<Applied>& undo_log) {
  for (auto it = undo_log.rbegin(); it != undo_log.rend(); ++it) {
    const auto r =
        engine_mut(it->tree).request_demand(it->child, it->dir, it->old_cells);
    // Undo of an increase is a release; undo of a release re-fills the
    // kept reservation. Both are guaranteed to succeed.
    HARP_ASSERT(r.satisfied);
  }
}

MultiTreeHarp::FailoverReport MultiTreeHarp::failover(NodeId node) {
  if (node == net::Topology::gateway() || node >= assignment_.size()) {
    throw InvalidArgument("cannot fail over this node");
  }
  FailoverReport report;
  const Tree from = assignment_[node];
  const Tree to = from == Tree::kPrimary ? Tree::kSecondary : Tree::kPrimary;
  assignment_[node] = to;

  std::vector<Applied> undo_log;
  // Releases on the old hierarchy first (they free nothing the new
  // hierarchy needs — the regions are disjoint — but keeping this order
  // mirrors a deployment, where traffic stops before it restarts).
  if (!apply_diff(from, desired_traffic(from), undo_log, report.messages,
                  report.links_touched) ||
      !apply_diff(to, desired_traffic(to), undo_log, report.messages,
                  report.links_touched)) {
    rollback(undo_log);
    assignment_[node] = from;
    return report;
  }
  report.satisfied = true;
  return report;
}

std::string MultiTreeHarp::validate() const {
  for (Tree t : {Tree::kPrimary, Tree::kSecondary}) {
    if (auto err = engine(t).validate(); !err.empty()) {
      return std::string(to_string(t)) + ": " + err;
    }
    const auto [begin, end] = region(t);
    for (const auto& e : global_schedule(t).entries()) {
      if (e.cell.slot < begin || e.cell.slot >= end) {
        return std::string(to_string(t)) + " cell " + to_string(e.cell) +
               " escapes region";
      }
    }
  }
  return {};
}

}  // namespace harp::mesh
