// Mesh connectivity model (the "non-tree topology" future-work extension).
//
// Real deployments are not trees: most nodes hear several potential
// parents, and the routing layer picks one. The paper scopes HARP to
// trees and proposes ("future work") decomposing non-tree topologies
// into multiple trees, applying HARP divide-and-conquer. MeshGraph is the
// substrate for that: the undirected who-hears-whom graph with link
// qualities, from which decompose() carves the trees.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace harp::mesh {

/// Undirected connectivity graph. Node 0 is the gateway.
class MeshGraph {
 public:
  explicit MeshGraph(std::size_t num_nodes);

  std::size_t size() const { return adjacency_.size(); }
  std::size_t num_links() const { return num_links_; }

  /// Declares that `a` and `b` hear each other with the given link
  /// quality in (0, 1]. Re-adding an existing link updates its quality.
  void add_link(NodeId a, NodeId b, double quality);

  /// Quality of the a-b link; 0 when they cannot hear each other.
  double quality(NodeId a, NodeId b) const;

  struct Neighbor {
    NodeId node;
    double quality;
  };
  const std::vector<Neighbor>& neighbors(NodeId node) const;

  /// True when every node can reach the gateway.
  bool connected() const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::size_t num_links_{0};
};

/// Random connected mesh: nodes are scattered on a unit square, the
/// gateway at the center; nodes hear each other within a radius chosen to
/// keep the graph connected, with quality decaying over distance. Typical
/// node degree 3-6, like a dense industrial deployment.
MeshGraph random_mesh(std::size_t num_nodes, Rng& rng);

}  // namespace harp::mesh
