// Umbrella header for the observability layer: metrics + trace + the
// instrumentation macros. Instrumented code includes only this header.
//
//   HARP_OBS_SCOPE("harp.engine.compose_ns");
//     — scoped wall-clock timer; on scope exit records the elapsed
//       nanoseconds into the named histogram of the *current context*
//       (obs/context.hpp) and emits one `phase` trace event. Gated by
//       obs::timing_enabled() (default off: the cost is one branch),
//       removed entirely under HARP_OBS=OFF. The name is interned once
//       per call site; the per-context instrument resolves lazily so the
//       macro stays correct when trials run under per-thread contexts.
//
//   HARP_OBS_EVENT({.type = obs::EventType::kCollision, ...});
//     — records one typed trace event into the current context's
//       TraceSink (one branch while the sink is disabled).
//
// Counters/gauges are not macro-gated: instrumented classes resolve them
// once via obs::MetricsRegistry::global() at construction and bump them
// unconditionally (a plain integer add); shared call sites use interned
// InstrumentIds. See docs/OBSERVABILITY.md for the full contract.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace harp::obs {

/// Whether HARP_OBS_SCOPE timers measure and record under the calling
/// thread's current context (off by default: two clock reads per scope
/// are not free on microsecond-scale kernels).
bool timing_enabled();
void set_timing_enabled(bool on);

/// Convenience: turn the whole layer on (trace sink + phase timers) —
/// what bench binaries do when --json/--trace is requested.
void enable(std::size_t trace_capacity = TraceSink::kDefaultCapacity);
/// Turn trace recording and phase timers back off (captured data and
/// metric values stay readable).
void disable();

/// Monotonic nanoseconds, for phase timing.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII phase timer behind HARP_OBS_SCOPE. When timing is disabled at
/// construction the destructor does nothing (the scope is not recorded,
/// even if timing gets enabled while it is open). The histogram and
/// phase id resolve at scope exit against the thread's current context —
/// deliberately NOT cached in a function-local static, which would bind
/// every context to whichever one executed the call site first.
class ScopedTimer {
 public:
  explicit ScopedTimer(InstrumentId scope_id)
      : scope_id_(scope_id), active_(timing_enabled()) {
    if (active_) start_ns_ = now_ns();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (!active_) return;
    const std::uint64_t elapsed = now_ns() - start_ns_;
    Context& ctx = current_context();
    ctx.metrics.histogram(scope_id_).record(elapsed);
    ctx.trace.emit_phase(scope_id_, elapsed);
  }

 private:
  InstrumentId scope_id_;
  bool active_;
  std::uint64_t start_ns_{0};
};

}  // namespace harp::obs

#define HARP_OBS_CONCAT_INNER(a, b) a##b
#define HARP_OBS_CONCAT(a, b) HARP_OBS_CONCAT_INNER(a, b)

#if HARP_OBS_ENABLED

/// Times the rest of the enclosing scope into the histogram `name` (which
/// should end in `_ns`) of the current context and emits a `phase` trace
/// event. The name interns once per call site; the instrument resolves
/// per context (first use: map lookup, afterwards: flat vector load).
#define HARP_OBS_SCOPE(name)                                                  \
  static const ::harp::obs::InstrumentId HARP_OBS_CONCAT(harp_obs_sid_,       \
                                                         __LINE__) =          \
      ::harp::obs::intern_histogram(name);                                    \
  ::harp::obs::ScopedTimer HARP_OBS_CONCAT(harp_obs_scope_, __LINE__)(        \
      HARP_OBS_CONCAT(harp_obs_sid_, __LINE__))

/// Records one trace event; the argument is a braced TraceEvent
/// initializer. Not evaluated under HARP_OBS=OFF.
#define HARP_OBS_EVENT(...) \
  ::harp::obs::TraceSink::global().emit(::harp::obs::TraceEvent __VA_ARGS__)

#else

#define HARP_OBS_SCOPE(name) ((void)0)
#define HARP_OBS_EVENT(...) ((void)0)

#endif  // HARP_OBS_ENABLED
