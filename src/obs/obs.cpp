#include "obs/obs.hpp"

namespace harp::obs {

namespace {
bool g_timing_enabled = false;
}  // namespace

bool timing_enabled() { return g_timing_enabled; }

void set_timing_enabled(bool on) { g_timing_enabled = on; }

void enable(std::size_t trace_capacity) {
  TraceSink::global().enable(trace_capacity);
  set_timing_enabled(true);
}

void disable() {
  TraceSink::global().disable();
  set_timing_enabled(false);
}

}  // namespace harp::obs
