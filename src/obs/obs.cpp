#include "obs/obs.hpp"

#include "obs/context.hpp"

namespace harp::obs {

bool timing_enabled() { return current_context().timing; }

void set_timing_enabled(bool on) { current_context().timing = on; }

void enable(std::size_t trace_capacity) {
  Context& ctx = current_context();
  ctx.trace.enable(trace_capacity);
  ctx.timing = true;
}

void disable() {
  Context& ctx = current_context();
  ctx.trace.disable();
  ctx.timing = false;
}

}  // namespace harp::obs
