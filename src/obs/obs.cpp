#include "obs/obs.hpp"

#include "common/logging.hpp"
#include "common/sync.hpp"
#include "obs/context.hpp"

namespace harp::obs {

namespace {

/// Lock-order reporter with trace integration: one `lock_order_fail`
/// event into the calling thread's sink (the names intern through the
/// phase table, like audit check names), plus the error log the default
/// reporter would have written. The failure itself (throw/abort) stays
/// in common/sync.cpp — this only records.
void trace_lock_order_violation(const LockOrderViolation& v) {
  HARP_OBS_EVENT(
      {.type = EventType::kLockOrderFail,
       .a = TraceSink::global().register_phase(v.acquiring_name),
       .b = TraceSink::global().register_phase(v.held_name),
       .value = (static_cast<std::uint64_t>(v.held_rank) << 32) |
                v.acquiring_rank});
  log::error() << "lock_order_fail: acquiring " << v.acquiring_name
               << " (rank " << v.acquiring_rank << ") while holding "
               << v.held_name << " (rank " << v.held_rank << ")";
}

/// Installed when the obs layer is linked at all (this TU defines
/// timing_enabled(), which every instrumented subsystem references).
/// The store is an atomic pointer swap, so initialization order against
/// other static constructors is immaterial — and no lock can be
/// acquired before main() anyway.
[[maybe_unused]] const bool g_lock_order_reporter_installed = [] {
  set_lock_order_reporter(&trace_lock_order_violation);
  return true;
}();

}  // namespace

bool timing_enabled() { return current_context().timing; }

void set_timing_enabled(bool on) { current_context().timing = on; }

void enable(std::size_t trace_capacity) {
  Context& ctx = current_context();
  ctx.trace.enable(trace_capacity);
  ctx.timing = true;
}

void disable() {
  Context& ctx = current_context();
  ctx.trace.disable();
  ctx.timing = false;
}

}  // namespace harp::obs
