// Minimal JSON value tree + serializer for observability exports.
//
// The observability layer must not pull in external dependencies, so this
// is a small, ordered (insertion-order preserving) JSON document builder:
// enough for the metrics registry, the trace sink and the bench harness to
// assemble schema-conformant documents (docs/OBSERVABILITY.md). It only
// WRITES JSON; parsing stays out of scope (tests carry their own checker).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace harp::obs {

/// One JSON value: null, bool, number (integer kinds kept exact), string,
/// array or object. Objects preserve insertion order so exported documents
/// diff cleanly run-to-run.
class Json {
 public:
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(long i) : value_(static_cast<std::int64_t>(i)) {}
  Json(long long i) : value_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : value_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long u) : value_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long long u) : value_(static_cast<std::uint64_t>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_) ||
           std::holds_alternative<std::uint64_t>(value_);
  }

  /// Numeric value coerced to double (0.0 when not a number) — what the
  /// experiment runner's aggregation walks over.
  double number() const {
    if (const auto* d = std::get_if<double>(&value_)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(&value_)) {
      return static_cast<double>(*i);
    }
    if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
      return static_cast<double>(*u);
    }
    return 0.0;
  }

  /// Object member lookup without creation; nullptr when this is not an
  /// object or the key is absent.
  const Json* find(const std::string& key) const;

  /// Object access; creates the member (and coerces a null value into an
  /// object) so documents can be built with plain assignment:
  ///   doc["metrics"]["counters"]["harp.sim.packets_dropped"] = 3;
  Json& operator[](const std::string& key);

  /// Appends to an array (coerces a null value into an array).
  void push_back(Json v);

  std::size_t size() const;

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits the compact single-line form (used for JSONL).
  void dump(std::ostream& out, int indent = 2) const;
  std::string dump_string(int indent = 2) const;

  /// Writes `s` as a JSON string literal (quoting + escapes).
  static void write_escaped(std::ostream& out, const std::string& s);

  const Object* as_object() const { return std::get_if<Object>(&value_); }
  const Array* as_array() const { return std::get_if<Array>(&value_); }
  const std::string* as_string() const {
    return std::get_if<std::string>(&value_);
  }

 private:
  explicit Json(Object o) : value_(std::move(o)) {}
  explicit Json(Array a) : value_(std::move(a)) {}
  void dump_impl(std::ostream& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::uint64_t,
               std::string, Array, Object>
      value_;
};

}  // namespace harp::obs
