// Minimal JSON value tree + serializer for observability exports.
//
// The observability layer must not pull in external dependencies, so this
// is a small, ordered (insertion-order preserving) JSON document builder:
// enough for the metrics registry, the trace sink and the bench harness to
// assemble schema-conformant documents (docs/OBSERVABILITY.md). It only
// WRITES JSON; parsing stays out of scope (tests carry their own checker).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace harp::obs {

/// One JSON value: null, bool, number (integer kinds kept exact), string,
/// array or object. Objects preserve insertion order so exported documents
/// diff cleanly run-to-run.
class Json {
 public:
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(long i) : value_(static_cast<std::int64_t>(i)) {}
  Json(long long i) : value_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : value_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long u) : value_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long long u) : value_(static_cast<std::uint64_t>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  /// Object access; creates the member (and coerces a null value into an
  /// object) so documents can be built with plain assignment:
  ///   doc["metrics"]["counters"]["harp.sim.packets_dropped"] = 3;
  Json& operator[](const std::string& key);

  /// Appends to an array (coerces a null value into an array).
  void push_back(Json v);

  std::size_t size() const;

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits the compact single-line form (used for JSONL).
  void dump(std::ostream& out, int indent = 2) const;
  std::string dump_string(int indent = 2) const;

  /// Writes `s` as a JSON string literal (quoting + escapes).
  static void write_escaped(std::ostream& out, const std::string& s);

  const Object* as_object() const { return std::get_if<Object>(&value_); }
  const Array* as_array() const { return std::get_if<Array>(&value_); }

 private:
  explicit Json(Object o) : value_(std::move(o)) {}
  explicit Json(Array a) : value_(std::move(a)) {}
  void dump_impl(std::ostream& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::uint64_t,
               std::string, Array, Object>
      value_;
};

}  // namespace harp::obs
