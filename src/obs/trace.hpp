// TraceSink: typed trace events in a preallocated ring buffer.
//
// The high-volume half of the observability layer. Every event is one
// fixed-size POD record; recording is
//   * compile-time removable (build with -DHARP_OBS=OFF, which defines
//     HARP_OBS_ENABLED=0: every emit call vanishes), and
//   * runtime-gated: with the sink disabled (the default) an emit costs a
//     single predictable branch and touches no memory.
// When enabled, events land in a ring buffer allocated once by `enable()`;
// recording never allocates, and once the ring is full the oldest events
// are overwritten (`overwritten()` reports how many — a trace is a tail,
// not necessarily a full history).
//
// Export is JSON Lines (one event object per line); the schema of every
// event type is specified in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

#ifndef HARP_OBS_ENABLED
#define HARP_OBS_ENABLED 1
#endif

namespace harp::obs {

/// Every event the instrumented subsystems can emit. Keep in sync with
/// to_string() and docs/OBSERVABILITY.md.
enum class EventType : std::uint8_t {
  kSlotTick,      // simulator advanced one slot
  kTxAttempt,     // a scheduled cell with a queued packet fired
  kTxSuccess,     // the transmission was received
  kCollision,     // cell or half-duplex conflict; packet stays queued
  kLinkLoss,      // Bernoulli link-quality failure; packet stays queued
  kQueueDrop,     // packet discarded: destination queue full
  kRouteDrop,     // packet discarded: destination no longer reachable
  kDeliver,       // packet reached its final destination
  kQueueDepth,    // depth of one queue after an enqueue
  kAdjustStart,   // engine begins a dynamic demand request
  kAdjustEnd,     // engine finished the request (aux = AdjustmentKind)
  kMsgSend,       // HARP protocol message queued at its source
  kMsgDeliver,    // HARP protocol message delivered over a mgmt cell
  kPhase,         // scoped wall-clock phase timing (HARP_OBS_SCOPE)
  kAuditFail,     // invariant audit violation (a = interned check-name id)
  kComposeCache,  // one generation pass's cache summary (a/b/value =
                  // hits/misses/inserts delta)
  kLockOrderFail, // lock-rank violation (a/b = acquiring/held phase-name
                  // ids, value = held_rank<<32 | acquiring_rank)
  kRtEvent,       // rt dispatcher executed one event (aux = task/timer,
                  // slot = virtual tick)
  kRtRetransmit,  // rt endpoint retransmitted an unacked message
                  // (aux = proto::MsgType, value = attempt number)
};

/// Stable wire name of an event type ("tx_attempt", "phase", ...).
const char* to_string(EventType t);

/// One fixed-size trace record. Field meaning depends on `type`; the
/// JSONL exporter maps each combination to named fields per the schema in
/// docs/OBSERVABILITY.md. Unused fields default to sentinels and are
/// omitted from the export.
struct TraceEvent {
  EventType type{EventType::kSlotTick};
  /// Small discriminator: Direction, AdjustmentKind, or proto::MsgType.
  std::uint8_t aux{kNoAux};
  /// Channel of the cell involved, when applicable.
  std::uint16_t channel{kNoChannel};
  /// Primary node (sender / requester / source), or a phase id for kPhase.
  std::uint32_t a{kNoNode};
  /// Secondary node (receiver / destination).
  std::uint32_t b{kNoNode};
  /// Absolute network slot, when the event is slot-aligned.
  std::uint64_t slot{kNoSlot};
  /// Event-specific payload: latency slots, queue depth, bytes, or ns.
  std::uint64_t value{0};

  static constexpr std::uint8_t kNoAux = 0xff;
  static constexpr std::uint16_t kNoChannel = 0xffff;
  static constexpr std::uint64_t kNoSlot = ~0ull;
};

static_assert(sizeof(TraceEvent) == 32, "trace events must stay compact");

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// Preallocates the ring and starts recording. Re-enabling with a
  /// different capacity reallocates; with the same capacity it only clears.
  void enable(std::size_t capacity = kDefaultCapacity);
  /// Stops recording. The captured events stay readable.
  void disable();
  bool enabled() const { return enabled_; }

  /// Records one event: one branch when disabled, a ring write (no
  /// allocation) when enabled. Compiled out entirely under HARP_OBS=OFF.
  void emit(const TraceEvent& e) {
#if HARP_OBS_ENABLED
    if (!enabled_) return;
    ring_[head_] = e;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++overwritten_;
    }
#else
    (void)e;
#endif
  }

  /// Events currently held (<= capacity).
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Events lost to ring wraparound since the last enable()/clear().
  std::uint64_t overwritten() const { return overwritten_; }

  /// Drops captured events (capacity and enablement unchanged).
  void clear();

  /// Captured events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// JSON Lines export, oldest event first (docs/OBSERVABILITY.md).
  /// `trial` >= 0 tags every line with a `"trial"` member — how the
  /// experiment runner shard-merges per-trial sinks into one stream.
  void write_jsonl(std::ostream& out, std::int64_t trial = -1) const;

  /// Emits one kPhase event for an interned histogram id (the
  /// HARP_OBS_SCOPE fast path): resolves and memoizes the scope's phase
  /// id per sink, so repeated scopes cost one vector load + a ring write.
  void emit_phase(std::uint32_t scope_id, std::uint64_t elapsed_ns);

  /// Interns a phase name for kPhase events; returns its id (the event's
  /// `a` field). Repeated registration of the same name is idempotent.
  std::uint16_t register_phase(const std::string& name);
  /// Name for a phase id; "?" when unknown.
  const char* phase_name(std::uint16_t id) const;

  /// The process-wide sink every HARP_OBS_EVENT records into.
  static TraceSink& global();

 private:
  bool enabled_{false};
  std::vector<TraceEvent> ring_;
  std::size_t head_{0};
  std::size_t size_{0};
  std::uint64_t overwritten_{0};
  std::vector<std::string> phase_names_;
  /// Memo for emit_phase: interned histogram id -> phase id (kNoPhase
  /// until first use under this sink).
  std::vector<std::uint16_t> scope_phase_;
  static constexpr std::uint16_t kNoPhase = 0xffff;
};

}  // namespace harp::obs
