#include "obs/context.hpp"

namespace harp::obs {

namespace {
thread_local Context* t_current = nullptr;
}  // namespace

Context& default_context() {
  static Context ctx;
  return ctx;
}

Context& current_context() {
  return t_current != nullptr ? *t_current : default_context();
}

ScopedContext::ScopedContext(Context& ctx) : prev_(t_current) {
  t_current = &ctx;
}

ScopedContext::~ScopedContext() { t_current = prev_; }

}  // namespace harp::obs
