// MetricsRegistry: named counters, gauges and fixed-bucket histograms.
//
// The registry is the always-on half of the observability layer (the
// TraceSink in obs/trace.hpp is the gated, high-volume half). Instrumented
// code resolves each instrument ONCE (at construction, or through a
// function-local static inside HARP_OBS_SCOPE) and then updates it with a
// plain integer add — no lookup, no lock, no allocation on the hot path.
// The simulator is single-threaded by design; instruments are not atomic.
//
// Metric names follow the dotted convention specified in
// docs/OBSERVABILITY.md: `harp.<subsystem>.<metric>[_<unit>]`, e.g.
// `harp.sim.tx_attempts` or `harp.engine.compose_ns`.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace harp::obs {

/// Monotone event count. `value()` survives until `MetricsRegistry::reset`.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

/// Last-write-wins instantaneous level (queue depth, reserved cells, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_{0.0};
};

/// Fixed-bucket histogram over unsigned samples. Buckets are defined by a
/// sorted list of inclusive upper bounds; one implicit overflow bucket
/// catches everything above the last bound. Also tracks count/sum/min/max
/// so means survive bucket quantization.
class Histogram {
 public:
  /// Default bounds for nanosecond timings: 1 us .. 1 s in decades.
  static const std::vector<std::uint64_t>& default_ns_bounds();

  explicit Histogram(std::vector<std::uint64_t> bounds);

  void record(std::uint64_t sample) {
    ++counts_[bucket_of(sample)];
    ++count_;
    sum_ += sample;
    if (sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Upper bounds, excluding the implicit overflow bucket.
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts; counts().size() == bounds().size() + 1 (overflow).
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  void reset();

 private:
  std::size_t bucket_of(std::uint64_t sample) const;

  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{std::numeric_limits<std::uint64_t>::max()};
  std::uint64_t max_{0};
};

/// Owns every instrument by name. Instruments are get-or-create and their
/// addresses are stable for the registry's lifetime; `reset()` zeroes the
/// recorded values but keeps every registration (so cached references in
/// instrumented code stay valid across benchmark repetitions).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Histogram with the default nanosecond bounds.
  Histogram& histogram(const std::string& name);
  /// Histogram with custom bounds. Bounds are fixed at first registration;
  /// later calls with the same name return the existing instrument.
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  /// Lookup without creation; nullptr when the name is unknown.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Every registered metric name, sorted (counters + gauges + histograms).
  std::vector<std::string> names() const;

  void reset();

  /// The documented snapshot format (docs/OBSERVABILITY.md):
  ///   {"counters": {name: value, ...},
  ///    "gauges":   {name: value, ...},
  ///    "histograms": {name: {count,sum,min,max,mean,buckets:[...]}, ...}}
  Json to_json() const;

  /// The process-wide registry every HARP_OBS_* macro and instrumented
  /// subsystem records into.
  static MetricsRegistry& global();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace harp::obs
