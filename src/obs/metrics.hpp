// MetricsRegistry: named counters, gauges and fixed-bucket histograms.
//
// The registry is the always-on half of the observability layer (the
// TraceSink in obs/trace.hpp is the gated, high-volume half). Instrumented
// code resolves each instrument cheaply and then updates it with a plain
// integer add — no lock, no allocation on the hot path. Two resolution
// styles exist:
//   * per-instance: an instrumented object resolves references once at
//     construction via MetricsRegistry::global() (which returns the
//     constructing thread's current context, see obs/context.hpp) and
//     caches them for its lifetime;
//   * per-call-site: free functions and methods shared across contexts
//     intern the name once into a process-wide InstrumentId (thread-safe,
//     a function-local static) and resolve it per call with a vector
//     index into the current context's registry.
// Instruments are not atomic: one context is only ever driven by one
// thread at a time (docs/OBSERVABILITY.md "Concurrency contract").
//
// Metric names follow the dotted convention specified in
// docs/OBSERVABILITY.md: `harp.<subsystem>.<metric>[_<unit>]`, e.g.
// `harp.sim.tx_attempts` or `harp.engine.compose_ns`.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace harp::obs {

/// Process-wide stable id of an interned instrument name. Ids are dense
/// and small (one per distinct call-site name), so every MetricsRegistry
/// can memoize id → instrument in a flat vector: resolving through an id
/// costs one bounds check + one indexed load after the first hit.
using InstrumentId = std::uint32_t;

/// Interns a counter (resp. histogram) name, returning its process-wide
/// id. Thread-safe; repeated interning of the same name returns the same
/// id. Call sites do this once through a function-local static. The
/// bounds overload records custom bucket bounds used whenever a registry
/// materializes the histogram through its id (first interning of a name
/// fixes its bounds).
InstrumentId intern_counter(const char* name);
InstrumentId intern_histogram(const char* name);
InstrumentId intern_histogram(const char* name,
                              std::vector<std::uint64_t> bounds);

/// Name for an interned id (by value: the intern table may grow
/// concurrently). Id must have been returned by the matching intern_*.
std::string counter_name(InstrumentId id);
std::string histogram_name(InstrumentId id);

/// Monotone event count. `value()` survives until `MetricsRegistry::reset`.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

/// Last-write-wins instantaneous level (queue depth, reserved cells, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_{0.0};
};

/// Fixed-bucket histogram over unsigned samples. Buckets are defined by a
/// sorted list of inclusive upper bounds; one implicit overflow bucket
/// catches everything above the last bound. Also tracks count/sum/min/max
/// so means survive bucket quantization.
class Histogram {
 public:
  /// Default bounds for nanosecond timings: 1 us .. 1 s in decades.
  static const std::vector<std::uint64_t>& default_ns_bounds();

  explicit Histogram(std::vector<std::uint64_t> bounds);

  void record(std::uint64_t sample) {
    ++counts_[bucket_of(sample)];
    ++count_;
    sum_ += sample;
    if (sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Upper bounds, excluding the implicit overflow bucket.
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts; counts().size() == bounds().size() + 1 (overflow).
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Adds another histogram's recorded samples (bucket-wise). Throws
  /// InvalidArgument when the bucket bounds differ.
  void merge(const Histogram& other);

  void reset();

 private:
  std::size_t bucket_of(std::uint64_t sample) const;

  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{std::numeric_limits<std::uint64_t>::max()};
  std::uint64_t max_{0};
};

/// Owns every instrument by name. Instruments are get-or-create and their
/// addresses are stable for the registry's lifetime; `reset()` zeroes the
/// recorded values but keeps every registration (so cached references in
/// instrumented code stay valid across benchmark repetitions).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Histogram with the default nanosecond bounds.
  Histogram& histogram(const std::string& name);
  /// Histogram with custom bounds. Bounds are fixed at first registration;
  /// later calls with the same name return the existing instrument.
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  /// Fast-path resolution through interned ids (see intern_counter /
  /// intern_histogram above): get-or-create on first use per registry,
  /// a flat vector load afterwards.
  Counter& counter(InstrumentId id);
  Histogram& histogram(InstrumentId id);

  /// Lookup without creation; nullptr when the name is unknown.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Every registered metric name, sorted (counters + gauges + histograms).
  std::vector<std::string> names() const;

  /// Adds another registry's recorded values into this one: counters and
  /// histograms accumulate; gauges accumulate their values too (callers
  /// merging N shards divide gauges by N for the mean — what the
  /// experiment runner does, docs/RUNNER.md). Instruments unknown here
  /// are created on the fly.
  void merge(const MetricsRegistry& other);

  void reset();

  /// The documented snapshot format (docs/OBSERVABILITY.md):
  ///   {"counters": {name: value, ...},
  ///    "gauges":   {name: value, ...},
  ///    "histograms": {name: {count,sum,min,max,mean,buckets:[...]}, ...}}
  Json to_json() const;

  /// The registry every HARP_OBS_* macro and instrumented subsystem
  /// records into: the calling thread's current context's registry
  /// (obs/context.hpp) — the process-wide default unless a ScopedContext
  /// is installed, as the experiment runner does per trial.
  static MetricsRegistry& global();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // Interned-id memos (index: InstrumentId). Entries are created lazily;
  // pointers are stable because the maps above own the instruments.
  std::vector<Counter*> counters_by_id_;
  std::vector<Histogram*> histograms_by_id_;
};

}  // namespace harp::obs
