#include "obs/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "obs/context.hpp"

namespace harp::obs {

namespace {

// Process-wide name intern tables behind the InstrumentId fast path.
// Mutex-guarded: interning happens once per call site (function-local
// static), never on the per-record hot path.
struct InternTable {
  Mutex mu{LockRank::kObsIntern, "obs.InternTable.mu"};
  std::vector<std::string> names HARP_GUARDED_BY(mu);
  // Histogram table only: custom bucket bounds (empty = default ns
  // bounds). First interning of a name fixes its bounds.
  std::vector<std::vector<std::uint64_t>> bounds HARP_GUARDED_BY(mu);

  InstrumentId intern(const char* name, std::vector<std::uint64_t> b = {}) {
    MutexLock lock(mu);
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<InstrumentId>(i);
    }
    names.emplace_back(name);
    bounds.push_back(std::move(b));
    return static_cast<InstrumentId>(names.size() - 1);
  }

  std::string name_of(InstrumentId id) {
    MutexLock lock(mu);
    return names.at(id);
  }

  std::vector<std::uint64_t> bounds_of(InstrumentId id) {
    MutexLock lock(mu);
    return bounds.at(id);
  }
};

InternTable& counter_interns() {
  static InternTable table;
  return table;
}

InternTable& histogram_interns() {
  static InternTable table;
  return table;
}

}  // namespace

InstrumentId intern_counter(const char* name) {
  return counter_interns().intern(name);
}

InstrumentId intern_histogram(const char* name) {
  return histogram_interns().intern(name);
}

InstrumentId intern_histogram(const char* name,
                              std::vector<std::uint64_t> bounds) {
  return histogram_interns().intern(name, std::move(bounds));
}

std::string counter_name(InstrumentId id) {
  return counter_interns().name_of(id);
}

std::string histogram_name(InstrumentId id) {
  return histogram_interns().name_of(id);
}

const std::vector<std::uint64_t>& Histogram::default_ns_bounds() {
  static const std::vector<std::uint64_t> bounds = {
      1'000,          // 1 us
      10'000,         // 10 us
      100'000,        // 100 us
      1'000'000,      // 1 ms
      10'000'000,     // 10 ms
      100'000'000,    // 100 ms
      1'000'000'000,  // 1 s
  };
  return bounds;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw InvalidArgument("histogram bounds must be sorted");
  }
  if (std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw InvalidArgument("histogram bounds must be distinct");
  }
}

std::size_t Histogram::bucket_of(std::uint64_t sample) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw InvalidArgument("cannot merge histograms with different bounds");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::uint64_t>::max();
  max_ = 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, Histogram::default_ns_bounds());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Counter& MetricsRegistry::counter(InstrumentId id) {
  if (id < counters_by_id_.size() && counters_by_id_[id] != nullptr) {
    return *counters_by_id_[id];
  }
  Counter& c = counter(counter_name(id));
  if (counters_by_id_.size() <= id) counters_by_id_.resize(id + 1, nullptr);
  counters_by_id_[id] = &c;
  return c;
}

Histogram& MetricsRegistry::histogram(InstrumentId id) {
  if (id < histograms_by_id_.size() && histograms_by_id_[id] != nullptr) {
    return *histograms_by_id_[id];
  }
  std::vector<std::uint64_t> bounds = histogram_interns().bounds_of(id);
  Histogram& h = bounds.empty() ? histogram(histogram_name(id))
                                : histogram(histogram_name(id),
                                            std::move(bounds));
  if (histograms_by_id_.size() <= id) {
    histograms_by_id_.resize(id + 1, nullptr);
  }
  histograms_by_id_[id] = &h;
  return h;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : counters_) out.push_back(name);
  for (const auto& [name, _] : gauges_) out.push_back(name);
  for (const auto& [name, _] : histograms_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).inc(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).add(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h->bounds()).merge(*h);
  }
}

void MetricsRegistry::reset() {
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

Json MetricsRegistry::to_json() const {
  Json out = Json::object();
  Json& counters = out["counters"];
  counters = Json::object();
  for (const auto& [name, c] : counters_) counters[name] = c->value();
  Json& gauges = out["gauges"];
  gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  Json& histograms = out["histograms"];
  histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json entry = Json::object();
    entry["count"] = h->count();
    entry["sum"] = h->sum();
    entry["min"] = h->min();
    entry["max"] = h->max();
    entry["mean"] = h->mean();
    Json buckets = Json::array();
    for (std::size_t i = 0; i < h->counts().size(); ++i) {
      Json bucket = Json::object();
      bucket["le"] = i < h->bounds().size() ? Json(h->bounds()[i]) : Json("inf");
      bucket["count"] = h->counts()[i];
      buckets.push_back(std::move(bucket));
    }
    entry["buckets"] = std::move(buckets);
    histograms[name] = std::move(entry);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  return current_context().metrics;
}

}  // namespace harp::obs
