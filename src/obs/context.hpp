// Per-thread observability contexts — the concurrency model of the obs
// layer (docs/OBSERVABILITY.md "Concurrency contract").
//
// A Context bundles one MetricsRegistry, one TraceSink and the phase-timer
// enable flag. Every access through the `global()` accessors and the
// HARP_OBS_* macros resolves to the *calling thread's current context*:
// the process-wide default context unless a ScopedContext has installed a
// different one on this thread. Instruments inside a context are plain
// (non-atomic) — a context must only ever be used by one thread at a time.
//
// This is what makes fleets of concurrent simulation trials (src/runner)
// possible without locks on the instrumentation hot path: each trial runs
// under its own installed Context, records into private instruments, and
// the runner merges the shards afterwards (MetricsRegistry::merge,
// TraceSink::write_jsonl with a trial tag).
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace harp::obs {

/// One isolated set of observability state. Cheap to construct (empty
/// registry, no trace ring until enable()).
struct Context {
  MetricsRegistry metrics;
  TraceSink trace;
  /// Whether HARP_OBS_SCOPE timers measure under this context (the flag
  /// behind obs::timing_enabled()).
  bool timing{false};
};

/// The process-wide default context — what every thread uses until it
/// installs its own. Single-threaded programs never see anything else.
Context& default_context();

/// The calling thread's active context (default_context() unless a
/// ScopedContext is live on this thread).
Context& current_context();

/// RAII installer: makes `ctx` the calling thread's current context for
/// the scope's lifetime, restoring the previous one on exit. The caller
/// must keep `ctx` alive for the duration and must not share it with
/// another thread while installed.
class ScopedContext {
 public:
  explicit ScopedContext(Context& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context* prev_;
};

}  // namespace harp::obs
