#include "obs/trace.hpp"

#include "obs/context.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace harp::obs {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kSlotTick: return "slot_tick";
    case EventType::kTxAttempt: return "tx_attempt";
    case EventType::kTxSuccess: return "tx_success";
    case EventType::kCollision: return "collision";
    case EventType::kLinkLoss: return "link_loss";
    case EventType::kQueueDrop: return "queue_drop";
    case EventType::kRouteDrop: return "route_drop";
    case EventType::kDeliver: return "deliver";
    case EventType::kQueueDepth: return "queue_depth";
    case EventType::kAdjustStart: return "adjust_start";
    case EventType::kAdjustEnd: return "adjust_end";
    case EventType::kMsgSend: return "msg_send";
    case EventType::kMsgDeliver: return "msg_deliver";
    case EventType::kPhase: return "phase";
    case EventType::kAuditFail: return "audit_fail";
    case EventType::kComposeCache: return "compose_cache";
    case EventType::kLockOrderFail: return "lock_order_fail";
    case EventType::kRtEvent: return "rt_event";
    case EventType::kRtRetransmit: return "rt_retransmit";
  }
  return "?";
}

namespace {

// Wire names for the small enums carried in TraceEvent::aux. Kept local so
// the observability layer stays at the bottom of the dependency stack;
// obs_test pins them against the authoritative enums
// (core::AdjustmentKind, proto::MsgType).
const char* direction_name(std::uint8_t aux) {
  return aux == 0 ? "up" : "down";
}

const char* adjust_kind_name(std::uint8_t aux) {
  static const char* const kNames[] = {"no_change", "local_release",
                                       "local_schedule", "partition_adjust",
                                       "rejected"};
  return aux < 5 ? kNames[aux] : "?";
}

const char* msg_type_name(std::uint8_t aux) {
  static const char* const kNames[] = {"post_intf", "put_intf", "post_part",
                                       "put_part", "cell_assign", "reject"};
  return aux < 6 ? kNames[aux] : "?";
}

const char* rt_kind_name(std::uint8_t aux) {
  // rt::Dispatcher event kinds (rt/dispatcher.hpp EventKind).
  static const char* const kNames[] = {"task", "timer"};
  return aux < 2 ? kNames[aux] : "?";
}

}  // namespace

void TraceSink::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  if (ring_.size() != capacity) {
    ring_.assign(capacity, TraceEvent{});
  }
  head_ = 0;
  size_ = 0;
  overwritten_ = 0;
  enabled_ = true;
}

void TraceSink::disable() { enabled_ = false; }

void TraceSink::clear() {
  head_ = 0;
  size_ = 0;
  overwritten_ = 0;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // head_ points at the next write position; the oldest retained event is
  // head_ when the ring has wrapped, index 0 otherwise.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::uint16_t TraceSink::register_phase(const std::string& name) {
  for (std::size_t i = 0; i < phase_names_.size(); ++i) {
    if (phase_names_[i] == name) return static_cast<std::uint16_t>(i);
  }
  phase_names_.push_back(name);
  return static_cast<std::uint16_t>(phase_names_.size() - 1);
}

const char* TraceSink::phase_name(std::uint16_t id) const {
  return id < phase_names_.size() ? phase_names_[id].c_str() : "?";
}

void TraceSink::emit_phase(std::uint32_t scope_id, std::uint64_t elapsed_ns) {
#if HARP_OBS_ENABLED
  if (!enabled_) return;
  if (scope_phase_.size() <= scope_id) {
    scope_phase_.resize(scope_id + 1, kNoPhase);
  }
  if (scope_phase_[scope_id] == kNoPhase) {
    scope_phase_[scope_id] = register_phase(histogram_name(scope_id));
  }
  emit({.type = EventType::kPhase,
        .a = scope_phase_[scope_id],
        .value = elapsed_ns});
#else
  (void)scope_id;
  (void)elapsed_ns;
#endif
}

void TraceSink::write_jsonl(std::ostream& out, std::int64_t trial) const {
  for (const TraceEvent& e : snapshot()) {
    Json line = Json::object();
    if (trial >= 0) line["trial"] = trial;
    line["type"] = to_string(e.type);
    if (e.slot != TraceEvent::kNoSlot) line["slot"] = e.slot;
    switch (e.type) {
      case EventType::kSlotTick:
        break;
      case EventType::kTxAttempt:
      case EventType::kTxSuccess:
      case EventType::kCollision:
      case EventType::kLinkLoss:
        line["from"] = e.a;
        line["to"] = e.b;
        if (e.channel != TraceEvent::kNoChannel) line["channel"] = e.channel;
        if (e.aux != TraceEvent::kNoAux) line["dir"] = direction_name(e.aux);
        break;
      case EventType::kQueueDrop:
        line["source"] = e.a;
        break;
      case EventType::kRouteDrop:
        line["source"] = e.a;
        if (e.b != kNoNode) line["destination"] = e.b;
        break;
      case EventType::kDeliver:
        line["source"] = e.a;
        line["latency_slots"] = e.value;
        line["met_deadline"] = e.aux != 0;
        break;
      case EventType::kQueueDepth:
        line["node"] = e.a;
        if (e.aux != TraceEvent::kNoAux) line["dir"] = direction_name(e.aux);
        line["depth"] = e.value;
        break;
      case EventType::kAdjustStart:
        line["node"] = e.a;
        if (e.aux != TraceEvent::kNoAux) line["dir"] = direction_name(e.aux);
        line["cells"] = e.value;
        break;
      case EventType::kAdjustEnd:
        line["node"] = e.a;
        if (e.aux != TraceEvent::kNoAux) {
          line["kind"] = adjust_kind_name(e.aux);
        }
        line["messages"] = e.value;
        break;
      case EventType::kMsgSend:
      case EventType::kMsgDeliver:
        line["from"] = e.a;
        line["to"] = e.b;
        if (e.aux != TraceEvent::kNoAux) line["msg"] = msg_type_name(e.aux);
        if (e.type == EventType::kMsgDeliver) line["bytes"] = e.value;
        break;
      case EventType::kPhase:
        line["phase"] = phase_name(static_cast<std::uint16_t>(e.a));
        line["ns"] = e.value;
        break;
      case EventType::kAuditFail:
        // Check names are interned through the phase-name table (they are
        // static strings exactly like HARP_OBS_SCOPE labels).
        line["check"] = phase_name(static_cast<std::uint16_t>(e.a));
        if (e.b != kNoNode) line["node"] = e.b;
        break;
      case EventType::kComposeCache:
        line["hits"] = e.a;
        line["misses"] = e.b;
        line["inserts"] = e.value;
        break;
      case EventType::kLockOrderFail:
        // Mutex names are interned through the phase-name table like
        // audit check names (static strings).
        line["acquiring"] = phase_name(static_cast<std::uint16_t>(e.a));
        line["held"] = phase_name(static_cast<std::uint16_t>(e.b));
        line["acquiring_rank"] = e.value & 0xffffffffull;
        line["held_rank"] = e.value >> 32;
        break;
      case EventType::kRtEvent:
        // `slot` carries the dispatcher's virtual tick (emitted above).
        if (e.aux != TraceEvent::kNoAux) line["kind"] = rt_kind_name(e.aux);
        break;
      case EventType::kRtRetransmit:
        line["from"] = e.a;
        line["to"] = e.b;
        if (e.aux != TraceEvent::kNoAux) line["msg"] = msg_type_name(e.aux);
        line["attempt"] = e.value;
        break;
    }
    line.dump(out, /*indent=*/0);
    out << '\n';
  }
}

TraceSink& TraceSink::global() { return current_context().trace; }

}  // namespace harp::obs
