#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace harp::obs {

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  Object* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) {
    throw InvalidArgument("Json::operator[]: value is not an object");
  }
  for (Member& m : *obj) {
    if (m.first == key) return m.second;
  }
  obj->emplace_back(key, Json());
  return obj->back().second;
}

const Json* Json::find(const std::string& key) const {
  const Object* obj = as_object();
  if (obj == nullptr) return nullptr;
  for (const Member& m : *obj) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  Array* arr = std::get_if<Array>(&value_);
  if (arr == nullptr) {
    throw InvalidArgument("Json::push_back: value is not an array");
  }
  arr->push_back(std::move(v));
}

std::size_t Json::size() const {
  if (const Array* a = as_array()) return a->size();
  if (const Object* o = as_object()) return o->size();
  return 0;
}

void Json::write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << static_cast<char>(c);
        }
    }
  }
  out << '"';
}

namespace {

void write_number(std::ostream& out, double d) {
  if (!std::isfinite(d)) {
    out << "null";  // JSON has no inf/nan
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Round-trippable but trimmed: prefer the shortest form that re-parses
  // to the same double.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", precision, d);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == d) {
      out << probe;
      return;
    }
  }
  out << buf;
}

void newline_indent(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

}  // namespace

void Json::dump_impl(std::ostream& out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out << "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out << (*b ? "true" : "false");
  } else if (const double* d = std::get_if<double>(&value_)) {
    write_number(out, *d);
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
    out << *i;
  } else if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) {
    out << *u;
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    write_escaped(out, *s);
  } else if (const Array* arr = std::get_if<Array>(&value_)) {
    if (arr->empty()) {
      out << "[]";
      return;
    }
    out << '[';
    for (std::size_t i = 0; i < arr->size(); ++i) {
      if (i > 0) out << ',';
      newline_indent(out, indent, depth + 1);
      (*arr)[i].dump_impl(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out << ']';
  } else if (const Object* obj = std::get_if<Object>(&value_)) {
    if (obj->empty()) {
      out << "{}";
      return;
    }
    out << '{';
    for (std::size_t i = 0; i < obj->size(); ++i) {
      if (i > 0) out << ',';
      newline_indent(out, indent, depth + 1);
      write_escaped(out, (*obj)[i].first);
      out << (indent > 0 ? ": " : ":");
      (*obj)[i].second.dump_impl(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out << '}';
  }
}

void Json::dump(std::ostream& out, int indent) const {
  dump_impl(out, indent, 0);
}

std::string Json::dump_string(int indent) const {
  std::ostringstream out;
  dump(out, indent);
  return out.str();
}

}  // namespace harp::obs
