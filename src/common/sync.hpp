// Annotated synchronization primitives + the runtime lock-rank checker
// (docs/STATIC_ANALYSIS.md "Concurrency analysis").
//
// Every mutex in the tree is a `harp::Mutex`: a std::mutex carrying
//   * Clang Thread Safety Analysis capability annotations
//     (common/thread_annotations.hpp), so `-Wthread-safety` proves at
//     compile time that guarded state is only touched under its lock, and
//   * a documented *lock rank*. Checked builds (HARP_LOCK_RANK, default
//     ON except Release — same policy as HARP_AUDIT) keep a per-thread
//     stack of held ranks; acquiring a mutex whose rank is not strictly
//     greater than every rank already held is a lock-order violation:
//     one `lock_order_fail` trace event (docs/OBSERVABILITY.md), an
//     error log, then the HARP_ASSERT failure path (throw, or abort
//     under HARP_ASSERT_ABORT). Ranks impose a global acquisition order,
//     which makes cross-subsystem deadlock impossible by construction —
//     the runtime backstop behind the static story.
//
// The rank table (LockRank) is the repo's whole locking hierarchy; a new
// mutex must pick a slot here and document it in the table in
// docs/STATIC_ANALYSIS.md. Raw std::mutex/std::condition_variable/
// std::thread outside src/common are rejected by scripts/harp_lint.py.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/thread_annotations.hpp"

#ifndef HARP_LOCK_RANK_ENABLED
#define HARP_LOCK_RANK_ENABLED 1
#endif

namespace harp {

/// The global lock hierarchy, outermost first: on one thread, ranks of
/// held locks must be strictly increasing in acquisition order. Gaps
/// leave room for future layers (the async-runtime roadmap item).
/// Keep in sync with the lock-rank table in docs/STATIC_ANALYSIS.md.
enum class LockRank : std::uint32_t {
  /// fleet::Fleet shard queues — outermost: held only around queue
  /// swaps/enqueues and progress waits, never while executing ops.
  kFleetShard = 100,
  /// runner::WorkerPool batch state (dispatch/completion handshake).
  kWorkerPool = 200,
  /// core::ComposeCache content map — taken by pool workers during
  /// parallel interface generation (hence above kWorkerPool).
  kComposeCache = 300,
  /// rt::Dispatcher cross-thread inbox — held only around post/drain
  /// queue swaps; producers may hold any of the ranks above while
  /// posting, so it sits below only the obs intern leaf.
  kRtDispatcher = 350,
  /// obs intern tables — leaf: interning may be reached from any
  /// subsystem's first instrument resolution.
  kObsIntern = 400,
};

class Mutex;

/// One lock-order violation, as handed to the reporter: the innermost
/// lock already held and the one whose acquisition broke the order.
struct LockOrderViolation {
  const char* held_name;
  std::uint32_t held_rank;
  const char* acquiring_name;
  std::uint32_t acquiring_rank;
};

/// Reporter invoked (still on the acquiring thread, violating lock NOT
/// held) before the violation fails through the HARP_ASSERT path. The
/// obs layer installs a reporter that emits the `lock_order_fail` trace
/// event; the default logs only. Reporters must not acquire locks.
using LockOrderReporter = void (*)(const LockOrderViolation&);
void set_lock_order_reporter(LockOrderReporter reporter) noexcept;

namespace sync_detail {
// Rank bookkeeping (sync.cpp): check against the calling thread's held
// stack (reports + fails on violation), push after acquisition, pop on
// release. Compiled out of Release via HARP_LOCK_RANK_ENABLED.
void check_lock_order(const Mutex* mu);
void note_acquired(const Mutex* mu);
void note_released(const Mutex* mu);
}  // namespace sync_detail

/// Annotated, ranked mutex. Same blocking behavior as std::mutex; the
/// rank and name exist for the checker and for diagnostics. Prefer
/// MutexLock over manual lock()/unlock().
class HARP_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name) noexcept
      : rank_(static_cast<std::uint32_t>(rank)), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HARP_ACQUIRE() {
#if HARP_LOCK_RANK_ENABLED
    sync_detail::check_lock_order(this);
#endif
    impl_.lock();
#if HARP_LOCK_RANK_ENABLED
    sync_detail::note_acquired(this);
#endif
  }

  void unlock() HARP_RELEASE() {
#if HARP_LOCK_RANK_ENABLED
    sync_detail::note_released(this);
#endif
    impl_.unlock();
  }

  std::uint32_t rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  friend class CondVar;
  std::mutex impl_;
  std::uint32_t rank_;
  const char* name_;  ///< static storage duration (diagnostics/trace)
};

/// RAII lock, the only idiomatic way to hold a Mutex. Scoped-capability
/// annotated: Clang tracks the guarded region it opens.
class HARP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HARP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HARP_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to harp::Mutex. No predicate overloads on
/// purpose: callers write explicit `while (!cond) cv.wait(mu);` loops in
/// a scope that holds the MutexLock, which keeps the guarded reads
/// visible to the static analysis (a predicate lambda would be analyzed
/// as an unlocked function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// The caller must hold `mu` (statically enforced). Spurious wakeups
  /// happen; always wait in a condition loop. The mutex keeps its slot
  /// in the thread's rank stack across the wait — user code never runs
  /// without the lock, so held-order checks stay exact.
  void wait(Mutex& mu) HARP_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.impl_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // MutexLock still owns the (reacquired) mutex
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// The one sanctioned thread type. An alias (not a wrapper class): the
/// point is a single greppable spelling, enforced by harp_lint's
/// raw-primitive check, so concurrency stays discoverable in one place.
using Thread = std::thread;

/// Hardware concurrency with a sane floor (>= 1).
std::size_t hardware_threads() noexcept;

}  // namespace harp
