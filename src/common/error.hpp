// Error handling helpers.
//
// Library-level contract violations throw harp::Error (invalid arguments,
// inconsistent topologies, infeasible allocations the caller must handle).
// Internal invariants that should be impossible to violate use HARP_ASSERT,
// which is active in all build types: this is control-plane code where a
// silent scheduling corruption is far worse than a crash.
//
// By default a failed HARP_ASSERT throws harp::Error so tests can observe
// violations. Building with -DHARP_ASSERT_ABORT=ON (CMake option) makes it
// print the failure and abort() instead: under sanitizers or a debugger
// that yields a native stack trace at the exact faulting frame rather than
// an exception swallowed (or re-thrown) far from its origin.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace harp {

/// Base exception for all errors raised by the HARP libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input (topology, task set, parameter) is malformed.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when a requested allocation cannot fit (e.g. the composed resource
/// interface exceeds the slotframe). Callers typically surface this as an
/// admission-control rejection.
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// True when assertion failures abort() instead of throwing (so tests that
/// deliberately provoke an assertion can skip themselves).
#ifdef HARP_ASSERT_ABORT
inline constexpr bool kAssertAborts = true;
#else
inline constexpr bool kAssertAborts = false;
#endif

[[noreturn]] inline void fail(const std::string& what) {
#ifdef HARP_ASSERT_ABORT
  std::fputs(what.c_str(), stderr);
  std::fputc('\n', stderr);
  std::abort();
#else
  throw Error(what);
#endif
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  fail(std::string("assertion failed: ") + expr + " at " + file + ":" +
       std::to_string(line));
}

}  // namespace harp

/// Always-on invariant check. Throws harp::Error on failure (or aborts
/// under HARP_ASSERT_ABORT) so violations never pass silently.
#define HARP_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::harp::assert_fail(#expr, __FILE__, __LINE__))
