// FNV-1a 64-bit — the repo's cross-machine stable digest primitive.
//
// Every determinism oracle that must compare across processes, machines
// and thread counts (engine state fingerprints, experiment-fleet result
// digests, the multi-tenant fleet fingerprint) hashes integers through
// this one function, so a digest printed by a bench baseline matches a
// digest computed anywhere else. Header-only and dependency-free on
// purpose: both the lowest layers (src/harp) and the orchestration layers
// (src/runner, src/fleet) fold into it without linking each other.
#pragma once

#include <cstddef>
#include <cstdint>

namespace harp {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// One FNV-1a absorption of `n` bytes into running state `h` (seed with
/// kFnvOffset). Byte-order sensitive: callers hash fixed-width integers,
/// which the repo only compares between little-endian hosts — the same
/// contract HarpEngine::state_fingerprint has always had.
inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                           std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Convenience absorption of one trivially-copyable value.
template <typename T>
inline std::uint64_t fnv1a_value(std::uint64_t h, const T& v) {
  return fnv1a(h, &v, sizeof v);
}

}  // namespace harp
