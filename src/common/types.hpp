// Fundamental value types shared by every HARP module.
//
// The whole code base works on a slotted multi-channel TDMA grid: time is a
// sequence of equal-length slots grouped into repeating slotframes, and each
// slot offers `num_channels` orthogonal channels. The unit of allocatable
// resource is a Cell = (slot offset, channel offset) inside the slotframe.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace harp {

/// Identifier of a network node. The gateway is always node 0 by convention
/// of the topology builder (see net/topology.hpp).
using NodeId = std::uint32_t;

/// Sentinel value meaning "no node" (e.g. parent of the gateway).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Slot offset within a slotframe, in [0, slotframe_length).
using SlotId = std::uint32_t;

/// Channel offset, in [0, num_channels). IEEE 802.15.4 in the 2.4 GHz band
/// offers 16 channels; the paper's experiments use up to all 16.
using ChannelId = std::uint32_t;

/// Monotone slot counter since the start of a simulation (absolute time,
/// not wrapped to the slotframe).
using AbsoluteSlot = std::uint64_t;

/// Identifier of a periodic application task (data flow).
using TaskId = std::uint32_t;

/// One schedulable unit of network resource: a (slot, channel) coordinate
/// inside the slotframe.
struct Cell {
  SlotId slot{0};
  ChannelId channel{0};

  friend auto operator<=>(const Cell&, const Cell&) = default;
};

/// A directed link `child -> parent` or `parent -> child` in the routing
/// tree. `sender` transmits, `receiver` listens. In the paper's notation
/// e_{i,j} has sender V_i and receiver V_j.
struct Link {
  NodeId sender{kNoNode};
  NodeId receiver{kNoNode};

  friend auto operator<=>(const Link&, const Link&) = default;
};

/// Direction of traffic relative to the gateway. Uplink flows toward the
/// gateway (sensor data), downlink away from it (actuation commands).
enum class Direction : std::uint8_t { kUp, kDown };

/// Human-readable direction name, for logs and benchmark tables.
inline const char* to_string(Direction d) {
  return d == Direction::kUp ? "up" : "down";
}

inline std::string to_string(const Cell& c) {
  return "(" + std::to_string(c.slot) + "," + std::to_string(c.channel) + ")";
}

inline std::string to_string(const Link& e) {
  return "e(" + std::to_string(e.sender) + "->" + std::to_string(e.receiver) +
         ")";
}

}  // namespace harp

template <>
struct std::hash<harp::Cell> {
  std::size_t operator()(const harp::Cell& c) const noexcept {
    return (static_cast<std::size_t>(c.slot) << 16) ^ c.channel;
  }
};

template <>
struct std::hash<harp::Link> {
  std::size_t operator()(const harp::Link& e) const noexcept {
    return (static_cast<std::size_t>(e.sender) << 32) ^ e.receiver;
  }
};
