#include "common/rng.hpp"

#include "common/error.hpp"

namespace harp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero outputs in a row, but be defensive.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  HARP_ASSERT(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  HARP_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() { return Rng((*this)()); }

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t stream) {
  // Two rounds of the SplitMix64 output mix over a combined state. The
  // golden-ratio multiplier separates streams even when both inputs are
  // small consecutive integers (the common case: seed 42, trials 0..N).
  std::uint64_t x = base_seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  std::uint64_t out = splitmix64(x);
  out ^= splitmix64(x);
  return out;
}

}  // namespace harp
