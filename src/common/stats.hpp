// Small descriptive-statistics accumulator used by metrics and benchmarks.
#pragma once

#include <cstddef>
#include <vector>

namespace harp {

/// Collects scalar samples and reports summary statistics. Percentiles are
/// computed on demand with the nearest-rank method.
class Stats {
 public:
  void add(double sample);
  void merge(const Stats& other);
  void clear();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Population standard deviation; 0 for fewer than two samples.
  double stddev() const;
  /// Nearest-rank percentile, p in [0, 100]. Requires at least one sample.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Samples are kept (not streamed) because experiment runs are small
  // (thousands of packets) and percentiles need the full distribution.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void sort_if_needed() const;
};

}  // namespace harp
