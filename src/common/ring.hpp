// RingQueue: a growable power-of-two ring buffer — the FIFO under the rt
// dispatcher's ready queue (docs/PERFORMANCE.md hot path 6).
//
// std::deque pays a chunk map indirection per access and allocates/frees
// chunks as the queue breathes; for a queue that cycles millions of
// small tasks between the same few fill levels that is pure overhead.
// RingQueue keeps one contiguous power-of-two buffer and masks indices:
// push/pop are a store/load plus an increment, and once the buffer has
// grown to the workload's high-water mark the queue never allocates
// again (steady state: zero heap traffic, the property the
// `harp.rt.task_allocs` gate builds on).
//
// Growth moves elements into a doubled buffer, so T must be movable;
// element order is preserved. Not thread-safe — single-owner, like the
// dispatcher loop it serves (cross-thread producers go through the
// mutex-guarded inbox, never this ring).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace harp {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return tail_ - head_; }

  /// Slots the current buffer can hold without growing.
  std::size_t capacity() const { return buf_.size(); }

  void push_back(T value) {
    if (tail_ - head_ == buf_.size()) grow();
    buf_[tail_ & mask_] = std::move(value);
    ++tail_;
  }

  /// Pops the oldest element. Precondition: !empty().
  T pop_front() {
    HARP_ASSERT(head_ != tail_);
    T value = std::move(buf_[head_ & mask_]);
    ++head_;
    return value;
  }

  /// Oldest element without popping. Precondition: !empty().
  T& front() {
    HARP_ASSERT(head_ != tail_);
    return buf_[head_ & mask_];
  }

  /// O(1) buffer exchange — the swap-batch idiom: a consumer swaps a
  /// scratch ring with the producer-facing ring under the lock, then
  /// drains the scratch outside it; the buffers (and their grown
  /// capacity) keep circulating between the two.
  void swap(RingQueue& other) {
    buf_.swap(other.buf_);
    std::swap(mask_, other.mask_);
    std::swap(head_, other.head_);
    std::swap(tail_, other.tail_);
  }

  /// Destroys all queued elements; keeps the buffer for reuse.
  void clear() {
    while (head_ != tail_) {
      T drop = std::move(buf_[head_ & mask_]);
      static_cast<void>(drop);  // resources released as `drop` dies
      ++head_;
    }
  }

 private:
  void grow() {
    const std::size_t next = buf_.empty() ? kInitialSlots : buf_.size() * 2;
    std::vector<T> bigger(next);
    const std::size_t count = tail_ - head_;
    for (std::size_t i = 0; i < count; ++i) {
      bigger[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_.swap(bigger);
    mask_ = next - 1;
    head_ = 0;
    tail_ = count;
  }

  static constexpr std::size_t kInitialSlots = 16;

  std::vector<T> buf_;
  std::size_t mask_{0};
  /// Monotonic positions; index = position & mask_. Wrap-around of the
  /// counters themselves needs 2^64 pushes — out of scope by fiat.
  std::size_t head_{0};
  std::size_t tail_{0};
};

}  // namespace harp
