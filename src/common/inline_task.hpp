// InlineFunction: a fixed-size, small-buffer-only callable — the
// allocation-free replacement for std::function on the rt dispatcher and
// fleet hot paths (docs/RUNTIME.md "Timer wheel & task storage",
// docs/PERFORMANCE.md hot path 6).
//
// std::function type-erases through a heap allocation whenever the
// callable outgrows its (implementation-defined, typically 16-24 byte)
// small buffer — which on the event hot paths means one malloc/free per
// posted task, per armed timer and per in-flight packet. InlineFunction
// flips the contract around: the capture buffer is a fixed
// kInlineCaptureBytes (48) bytes, and a callable that does not fit is a
// COMPILE ERROR, never a silent allocation. Code that genuinely needs a
// fat capture must say so explicitly (rt::boxed_task, which heap-boxes
// the callable and counts the allocation in `harp.rt.task_allocs` so the
// bench gate can assert the hot paths stayed at zero).
//
// Differences from std::function, all deliberate:
//   * move-only (like std::move_only_function): captures may hold
//     unique_ptr and other move-only state;
//   * the wrapped callable must be nothrow-move-constructible (moves
//     happen while queues shuffle storage; a throwing move could lose
//     tasks);
//   * invoking an empty InlineFunction is a HARP_ASSERT failure, not
//     std::bad_function_call.
//
// Thread-safety: an InlineFunction confers none — it is plain value
// state, owned and invoked by exactly one thread at a time. Containers
// that move these across threads (rt::Dispatcher's cross-thread inbox,
// fleet shard queues) guard the container with a ranked harp::Mutex and
// annotate the field HARP_GUARDED_BY (common/thread_annotations.hpp);
// the handoff's happens-before edge is the container's, not the task's.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/error.hpp"

namespace harp {

/// Capture budget of every InlineFunction instantiation. Sized for the
/// repo's fattest hot-path capture (a `this` pointer plus a handful of
/// ids/cells — see rt::ProtoRuntime's roam post) with headroom, while
/// keeping a timer-wheel node comfortably inside one cache line pair.
inline constexpr std::size_t kInlineCaptureBytes = 48;

template <typename Signature>
class InlineFunction;  // primary left undefined: use a function signature

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  InlineFunction() = default;

  /// Wraps any callable with a fitting capture. Oversized or
  /// over-aligned callables fail to compile — use rt::boxed_task (or
  /// shrink the capture) instead of reaching for std::function.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineCaptureBytes,
                  "capture exceeds kInlineCaptureBytes: shrink it or box "
                  "it explicitly (rt::boxed_task) — InlineFunction never "
                  "heap-allocates");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "captures must be nothrow-move-constructible: queue "
                  "growth moves tasks and must not lose them");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    ops_ = &ops_for<Fn>();
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  R operator()(Args... args) {
    HARP_ASSERT(ops_ != nullptr);
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  /// Per-callable-type vtable: one static instance per wrapped Fn, so an
  /// InlineFunction is (capture bytes + one pointer) with no per-object
  /// allocation anywhere.
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static const Ops& ops_for() {
    static constexpr Ops kOps = {
        [](void* s, Args&&... args) -> R {
          return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) {
          Fn* from = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        },
        [](void* s) { static_cast<Fn*>(s)->~Fn(); },
    };
    return kOps;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCaptureBytes];
  const Ops* ops_{nullptr};
};

/// The rt event core's task currency: what the dispatcher ready queue,
/// the cross-thread inbox, timer-wheel nodes and channel delivery all
/// store. Steady-state dispatch moves these by memcpy-sized relocations
/// and never touches the heap.
using InlineTask = InlineFunction<void()>;

}  // namespace harp
