#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace harp {

void Stats::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Stats::merge(const Stats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Stats::clear() {
  samples_.clear();
  sorted_ = true;
}

double Stats::sum() const {
  double total = 0.0;
  for (double s : samples_) total += s;
  return total;
}

double Stats::mean() const {
  HARP_ASSERT(!samples_.empty());
  return sum() / static_cast<double>(samples_.size());
}

double Stats::min() const {
  HARP_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  HARP_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

void Stats::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Stats::percentile(double p) const {
  HARP_ASSERT(!samples_.empty());
  HARP_ASSERT(p >= 0.0 && p <= 100.0);
  sort_if_needed();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace harp
