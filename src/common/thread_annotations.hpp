// Portable Clang Thread Safety Analysis macros (docs/STATIC_ANALYSIS.md
// "Concurrency analysis").
//
// Wraps Clang's capability attributes so concurrent classes can state
// their locking discipline in the type system: which mutex guards which
// field (HARP_GUARDED_BY), which locks a method needs on entry
// (HARP_REQUIRES), acquires (HARP_ACQUIRE) or must not hold
// (HARP_EXCLUDES). Clang's `-Wthread-safety` then proves every access
// site against those contracts at compile time — the `thread-safety` CI
// leg builds the whole tree with the analysis promoted to an error.
//
// On compilers without the attributes (GCC builds, MSVC) every macro
// expands to nothing, so the annotations are free documentation there.
// The vocabulary and spellings follow the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the
// HARP_ prefix is local.
//
// Annotation conventions for this repo:
//   * every field shared between threads is either HARP_GUARDED_BY a
//     `harp::Mutex`, an atomic, or has its single-owner access rule
//     documented at the declaration (e.g. fleet shard engines, obs
//     contexts);
//   * raw `std::mutex`/`std::condition_variable`/`std::thread` outside
//     src/common are banned by `scripts/harp_lint.py` — concurrent code
//     uses the annotated wrappers in common/sync.hpp.
#pragma once

#if defined(__clang__)
#define HARP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HARP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a class as a capability ("mutex" in diagnostics).
#define HARP_CAPABILITY(x) HARP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (harp::MutexLock).
#define HARP_SCOPED_CAPABILITY \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares that a field/variable may only be accessed while holding the
/// given capability.
#define HARP_GUARDED_BY(x) HARP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Declares that the pointed-to data (not the pointer itself) is guarded.
#define HARP_PT_GUARDED_BY(x) \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares that a function may only be called while holding the given
/// capabilities (checked at every call site).
#define HARP_REQUIRES(...) \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Declares that a function acquires the given capabilities (held by the
/// caller after it returns).
#define HARP_ACQUIRE(...) \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the given capabilities.
#define HARP_RELEASE(...) \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Declares that a function acquires the capability iff it returns the
/// given value (try-lock shapes).
#define HARP_TRY_ACQUIRE(...) \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the given capabilities
/// (documents self-deadlock-free entry points).
#define HARP_EXCLUDES(...) \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability.
#define HARP_RETURN_CAPABILITY(x) \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Tells the analysis to assume the capability is held from here on
/// (for happens-before edges it cannot see, e.g. post-quiesce reads).
#define HARP_ASSERT_CAPABILITY(x) \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Opts one function out of the analysis entirely. Use only with a
/// comment explaining the external synchronization that makes it sound.
#define HARP_NO_THREAD_SAFETY_ANALYSIS \
  HARP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
