// Deterministic random number generation.
//
// Every stochastic component in this code base (topology generator, random
// scheduler, loss model, ...) takes an explicit Rng so that experiments are
// reproducible from a single seed and tests can replay exact sequences.
// The engine is xoshiro256**, a small, fast, well-distributed generator; we
// implement it ourselves to keep results stable across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace harp {

/// Seeded pseudo-random generator with convenience sampling helpers.
/// Satisfies the spirit of UniformRandomBitGenerator but exposes its own
/// bounded sampling to avoid std::uniform_int_distribution's
/// implementation-defined sequences.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64, per the
  /// xoshiro authors' recommendation. Any seed (including 0) is valid.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniformly selects an index into a container of size n (n > 0).
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(below(n)); }

  /// Fisher-Yates shuffle of a vector, using this generator.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[static_cast<std::size_t>(below(i))]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// simulation component its own stream while keeping one master seed.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Derives a decorrelated sub-stream seed from a base seed and a stream
/// index (SplitMix64-style bit mixing). This is how the experiment runner
/// gives every trial its own independent seed: trial results depend only
/// on (base_seed, stream), never on worker count or execution order, so
/// fleets are bit-identical for any --jobs value. Stable across platforms
/// and releases — persisted reports may embed derived seeds.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t stream);

}  // namespace harp
