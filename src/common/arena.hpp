// FlatArena: a bump allocator for the hot paths' struct-of-arrays scratch.
//
// The packing and composition kernels (docs/KERNELS.md) carve their
// per-run working arrays — sorted rect keys, skyline x/height lanes —
// out of one contiguous buffer instead of growing several vectors. The
// arena hands out raw typed spans with two guarantees:
//
//   * every span stays valid until the next reset(): running out of the
//     current block allocates an overflow block, it never relocates
//     memory that is already handed out;
//   * after reset() the arena folds its high-water footprint back into a
//     single block, so a scratch that is reused across runs reaches a
//     steady state with exactly zero allocations per run.
//
// Only trivial types are supported (no constructors or destructors run;
// the memory is handed out uninitialized), which is all the kernels
// need: the arrays are plain integer lanes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace harp {

class FlatArena {
 public:
  FlatArena() = default;

  FlatArena(const FlatArena&) = delete;
  FlatArena& operator=(const FlatArena&) = delete;
  FlatArena(FlatArena&&) = default;
  FlatArena& operator=(FlatArena&&) = default;

  /// Uninitialized storage for `n` values of T, aligned for T. Valid until
  /// reset(). Never returns nullptr; n == 0 yields a usable (if pointless)
  /// pointer into the arena.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "FlatArena memory is raw: no ctors/dtors ever run");
    const std::size_t bytes = n * sizeof(T);
    std::size_t off = align_up(used_, alignof(T));
    if (blocks_.empty() || off + bytes > blocks_.back().size) {
      grow(align_up(bytes, alignof(std::max_align_t)));
      off = 0;  // fresh block; its base is max-aligned
    }
    used_ = off + bytes;
    return reinterpret_cast<T*>(blocks_.back().data.get() + off);
  }

  /// Invalidates every span handed out so far and makes the arena's whole
  /// footprint available again. If the last run overflowed into extra
  /// blocks, they are coalesced into one block of the total size, so the
  /// next run of the same shape allocates nothing.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) total += b.size;
      blocks_.clear();
      blocks_.push_back(make_block(total));
    }
    used_ = 0;
  }

  /// Bytes the arena currently owns (across all blocks).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes handed out since the last reset() from the active block only —
  /// a lower bound on the run's footprint, exact when nothing overflowed.
  std::size_t used_bytes() const { return used_; }

  /// True when the last allocation spilled past the first block — the
  /// signal (used by tests) that the next reset() will coalesce.
  bool overflowed() const { return blocks_.size() > 1; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size{0};
  };

  static std::size_t align_up(std::size_t v, std::size_t a) {
    return (v + a - 1) & ~(a - 1);
  }

  static Block make_block(std::size_t size) {
    return {std::make_unique<std::byte[]>(size), size};
  }

  /// Opens a new active block of at least `need` bytes, growing
  /// geometrically over the current footprint so a sequence of slightly-
  /// too-big runs converges instead of allocating every time.
  void grow(std::size_t need) {
    constexpr std::size_t kMinBlock = 1024;
    std::size_t size = kMinBlock;
    for (const Block& b : blocks_) size += b.size;
    if (size < need) size = need;
    blocks_.push_back(make_block(size));
  }

  std::vector<Block> blocks_;
  std::size_t used_{0};  // bump offset within blocks_.back()
};

}  // namespace harp
