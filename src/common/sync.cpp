#include "common/sync.hpp"

#include <atomic>
#include <string>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace harp {
namespace {

std::atomic<LockOrderReporter> g_reporter{nullptr};

#if HARP_LOCK_RANK_ENABLED

/// Deepest realistic nesting is 2 (pool dispatch + compose cache); 16
/// leaves room without making the thread_local footprint interesting.
constexpr int kMaxHeldLocks = 16;

struct HeldStack {
  const Mutex* mu[kMaxHeldLocks];
  int count = 0;
};

// Per-thread stack of held harp::Mutexes, in acquisition order. Plain
// PODs only, so thread exit never runs a nontrivial destructor.
thread_local HeldStack t_held;

[[noreturn]] void violate(const Mutex* held, const Mutex* acquiring) {
  const LockOrderViolation v{held->name(), held->rank(), acquiring->name(),
                             acquiring->rank()};
  if (LockOrderReporter reporter =
          g_reporter.load(std::memory_order_acquire)) {
    reporter(v);
  } else {
    log::error() << "lock_order_fail: acquiring " << v.acquiring_name
                 << " (rank " << v.acquiring_rank << ") while holding "
                 << v.held_name << " (rank " << v.held_rank << ")";
  }
  fail(std::string("lock rank violation: acquiring ") + v.acquiring_name +
       " (rank " + std::to_string(v.acquiring_rank) + ") while holding " +
       v.held_name + " (rank " + std::to_string(v.held_rank) + ")");
}

#endif  // HARP_LOCK_RANK_ENABLED

}  // namespace

void set_lock_order_reporter(LockOrderReporter reporter) noexcept {
  g_reporter.store(reporter, std::memory_order_release);
}

namespace sync_detail {

#if HARP_LOCK_RANK_ENABLED

void check_lock_order(const Mutex* mu) {
  // Ranks must be strictly increasing in acquisition order; an equal
  // rank is also a violation (covers recursive self-lock), and checking
  // against EVERY held lock — not just the innermost — keeps the report
  // pointed at the first lock that makes the acquisition illegal even
  // when releases interleaved out of LIFO order.
  const HeldStack& held = t_held;
  for (int i = 0; i < held.count; ++i) {
    if (held.mu[i]->rank() >= mu->rank()) violate(held.mu[i], mu);
  }
}

void note_acquired(const Mutex* mu) {
  HeldStack& held = t_held;
  if (held.count >= kMaxHeldLocks) {
    fail("lock rank: more than 16 locks held by one thread");
  }
  held.mu[held.count++] = mu;
}

void note_released(const Mutex* mu) {
  HeldStack& held = t_held;
  // Search from the top: releases are LIFO in practice, but unlock order
  // is not part of the discipline, so any held entry may go.
  for (int i = held.count - 1; i >= 0; --i) {
    if (held.mu[i] == mu) {
      for (int j = i + 1; j < held.count; ++j) held.mu[j - 1] = held.mu[j];
      --held.count;
      return;
    }
  }
  fail(std::string("lock rank: released ") + mu->name() +
       " which this thread does not hold");
}

#else  // !HARP_LOCK_RANK_ENABLED

// Release builds still link the symbols (headers of mixed-config
// consumers may reference them), but they are never called.
void check_lock_order(const Mutex*) {}
void note_acquired(const Mutex*) {}
void note_released(const Mutex*) {}

#endif  // HARP_LOCK_RANK_ENABLED

}  // namespace sync_detail

std::size_t hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace harp
