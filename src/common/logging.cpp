#include "common/logging.hpp"

#include <atomic>
#include <iostream>

namespace harp::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};

const char* label(Level lvl) {
  switch (lvl) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  std::cerr << "[" << label(lvl) << "] " << message << '\n';
}

}  // namespace harp::log
