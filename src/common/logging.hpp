// Minimal leveled logging.
//
// The simulator and protocol agents log through this facility so that
// examples can turn on tracing (`harp::log::set_level(Level::kDebug)`)
// while tests and benchmarks stay quiet by default.
#pragma once

#include <sstream>
#include <string>

namespace harp::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_level(Level level);
Level level();

/// Emits one line to stderr if `lvl` passes the threshold.
void write(Level lvl, const std::string& message);

namespace detail {

class LineBuilder {
 public:
  explicit LineBuilder(Level lvl) : lvl_(lvl) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { write(lvl_, out_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream out_;
};

}  // namespace detail

/// Usage: harp::log::info() << "node " << id << " joined";
inline detail::LineBuilder debug() { return detail::LineBuilder(Level::kDebug); }
inline detail::LineBuilder info() { return detail::LineBuilder(Level::kInfo); }
inline detail::LineBuilder warn() { return detail::LineBuilder(Level::kWarn); }
inline detail::LineBuilder error() { return detail::LineBuilder(Level::kError); }

}  // namespace harp::log
