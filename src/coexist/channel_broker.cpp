#include "coexist/channel_broker.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "net/traffic.hpp"

namespace harp::coexist {

ChannelBroker::ChannelBroker(ChannelId total_channels) : total_(total_channels) {
  if (total_channels == 0) {
    throw InvalidArgument("need at least one channel");
  }
}

ChannelId ChannelBroker::spare_channels() const {
  ChannelId used = 0;
  for (const Network& n : networks_) used += n.band.width;
  return total_ - used;
}

std::unique_ptr<core::HarpEngine> ChannelBroker::try_build(
    const NetworkSpec& spec, ChannelId width) {
  net::SlotframeConfig frame = spec.frame;
  frame.num_channels = width;
  try {
    return std::make_unique<core::HarpEngine>(
        spec.topology, net::derive_traffic(spec.topology, spec.tasks, frame),
        frame, spec.tasks, core::EngineOptions{spec.own_slack});
  } catch (const InfeasibleError&) {
    return nullptr;
  }
}

void ChannelBroker::layout_bands() {
  ChannelId cursor = 0;
  for (Network& n : networks_) {
    n.band.first = cursor;
    cursor += n.band.width;
  }
  HARP_ASSERT(cursor <= total_);
}

std::optional<NetworkId> ChannelBroker::admit(NetworkSpec spec) {
  spec.frame.validate();
  for (ChannelId width = 1; width <= spare_channels(); ++width) {
    if (auto engine = try_build(spec, width)) {
      Network n{std::move(spec), Band{0, width}, std::move(engine)};
      networks_.push_back(std::move(n));
      layout_bands();
      return networks_.size() - 1;
    }
  }
  return std::nullopt;
}

ChannelBroker::Band ChannelBroker::band(NetworkId id) const {
  HARP_ASSERT(id < networks_.size());
  return networks_[id].band;
}

const core::HarpEngine& ChannelBroker::engine(NetworkId id) const {
  HARP_ASSERT(id < networks_.size());
  return *networks_[id].engine;
}

core::Schedule ChannelBroker::global_schedule(NetworkId id) const {
  HARP_ASSERT(id < networks_.size());
  const Network& n = networks_[id];
  core::Schedule out(n.engine->schedule().num_nodes());
  for (NodeId child = 1; child < out.num_nodes(); ++child) {
    for (Direction dir : {Direction::kUp, Direction::kDown}) {
      std::vector<Cell> cells = n.engine->schedule().cells(child, dir);
      for (Cell& c : cells) c.channel += n.band.first;
      out.set_cells(child, dir, std::move(cells));
    }
  }
  return out;
}

ChannelBroker::Report ChannelBroker::request_demand(NetworkId id,
                                                    NodeId child,
                                                    Direction dir,
                                                    int cells) {
  HARP_ASSERT(id < networks_.size());
  Network& net = networks_[id];
  Report report;

  // Fast path: the network's own hierarchy absorbs the change.
  const auto r = net.engine->request_demand(child, dir, cells);
  if (r.satisfied) {
    report.satisfied = true;
    report.intra_messages = r.messages.size();
    return report;
  }

  // The band is exhausted: widen it. Candidate widths come from the spare
  // pool first; each attempt re-bootstraps the network from its CURRENT
  // traffic matrix with the one link overridden.
  std::vector<Band> old_bands;
  for (const Network& n : networks_) old_bands.push_back(n.band);
  const auto count_rebanded = [&] {
    std::size_t moved = 0;
    for (NetworkId other = 0; other < networks_.size(); ++other) {
      if (networks_[other].band.first != old_bands[other].first ||
          networks_[other].band.width != old_bands[other].width) {
        ++moved;
      }
    }
    return moved;
  };
  net::TrafficMatrix want = net.engine->traffic();
  want.set_demand(child, dir, cells);

  const auto rebuild = [&](ChannelId width)
      -> std::unique_ptr<core::HarpEngine> {
    net::SlotframeConfig frame = net.spec.frame;
    frame.num_channels = width;
    try {
      return std::make_unique<core::HarpEngine>(
          net.spec.topology, want, frame, net.spec.tasks,
          core::EngineOptions{net.spec.own_slack});
    } catch (const InfeasibleError&) {
      return nullptr;
    }
  };

  for (ChannelId width = net.band.width + 1;
       width <= net.band.width + spare_channels(); ++width) {
    if (auto engine = rebuild(width)) {
      net.engine = std::move(engine);
      net.band.width = width;
      layout_bands();
      report.satisfied = true;
      report.networks_rebanded = count_rebanded();
      return report;
    }
  }

  // No spare channels left: borrow from the neighbor with the most
  // headroom (widest band that still bootstraps one channel narrower at
  // its CURRENT demand — reservations included).
  const auto slim_build = [&](NetworkId other)
      -> std::unique_ptr<core::HarpEngine> {
    net::SlotframeConfig frame = networks_[other].spec.frame;
    frame.num_channels = networks_[other].band.width - 1;
    try {
      return std::make_unique<core::HarpEngine>(
          networks_[other].spec.topology, networks_[other].engine->traffic(),
          frame, networks_[other].spec.tasks,
          core::EngineOptions{networks_[other].spec.own_slack});
    } catch (const InfeasibleError&) {
      return nullptr;
    }
  };
  std::optional<NetworkId> donor;
  for (NetworkId other = 0; other < networks_.size(); ++other) {
    if (other == id || networks_[other].band.width <= 1) continue;
    if (auto slim = slim_build(other)) {
      if (!donor ||
          networks_[other].band.width > networks_[*donor].band.width) {
        donor = other;
      }
    }
  }
  if (donor) {
    if (auto engine = rebuild(net.band.width + 1)) {
      auto slim = slim_build(*donor);
      HARP_ASSERT(slim != nullptr);
      networks_[*donor].engine = std::move(slim);
      networks_[*donor].band.width -= 1;
      net.engine = std::move(engine);
      net.band.width += 1;
      layout_bands();
      report.satisfied = true;
      report.networks_rebanded = count_rebanded();
      return report;
    }
  }
  return report;  // denied; the requesting network keeps its old state
}

std::string ChannelBroker::validate() const {
  ChannelId cursor = 0;
  for (NetworkId id = 0; id < networks_.size(); ++id) {
    const Network& n = networks_[id];
    if (n.band.first != cursor) {
      return "band of network " + std::to_string(id) + " misplaced";
    }
    cursor += n.band.width;
    if (cursor > total_) {
      return "bands exceed the channel space";
    }
    if (auto err = n.engine->validate(); !err.empty()) {
      return "network " + std::to_string(id) + ": " + err;
    }
    for (const auto& e : global_schedule(id).entries()) {
      if (e.cell.channel < n.band.first ||
          e.cell.channel >= n.band.first + n.band.width) {
        return "network " + std::to_string(id) + " cell escapes its band";
      }
    }
  }
  return {};
}

}  // namespace harp::coexist
