// Co-existing heterogeneous IWNs (the paper's third future-work item).
//
// Several independent networks — each with its own gateway, tree, task
// set, and even slotframe length — often share one 2.4 GHz band. The same
// HARP philosophy lifts one dimension up: a channel BROKER partitions the
// 16 channels into contiguous per-network bands (isolation: networks can
// never collide), each network runs its own HARP hierarchy inside its
// band, and band boundaries move at runtime with the same
// reservation-first, smallest-change discipline as slot partitions:
//   * a network whose demand drops keeps its band (reservation);
//   * a network that needs more channels takes them from the spare pool,
//     or from the adjacent band with the most unused channels;
//   * re-briefing cost is counted per affected network, mirroring the
//     paper's message accounting.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "harp/engine.hpp"
#include "net/task.hpp"
#include "net/topology.hpp"

namespace harp::coexist {

/// Identifier of a co-existing network (index into the broker).
using NetworkId = std::size_t;

class ChannelBroker {
 public:
  /// Creates a broker over `total_channels` (e.g. 16 for 802.15.4).
  explicit ChannelBroker(ChannelId total_channels);

  struct NetworkSpec {
    net::Topology topology;
    std::vector<net::Task> tasks;
    /// Per-network slotframe; num_channels is ignored (the broker
    /// assigns the band).
    net::SlotframeConfig frame;
    int own_slack = 0;
  };

  /// Admits a network, granting it the smallest channel band that fits
  /// its task set (searched from 1 channel up). Returns its id, or
  /// nullopt when no band size up to the spare capacity admits it.
  std::optional<NetworkId> admit(NetworkSpec spec);

  std::size_t network_count() const { return networks_.size(); }
  ChannelId total_channels() const { return total_; }
  ChannelId spare_channels() const;

  /// The band [first, first + width) assigned to a network.
  struct Band {
    ChannelId first{0};
    ChannelId width{0};
  };
  Band band(NetworkId id) const;

  /// The network's engine (its cells are in band-local channels 0..width).
  const core::HarpEngine& engine(NetworkId id) const;

  /// The network's schedule translated to GLOBAL channel coordinates.
  core::Schedule global_schedule(NetworkId id) const;

  /// Runtime traffic change inside one network. When the network's band
  /// can no longer admit its demand, the broker widens the band — from
  /// the spare pool first, else by shrinking the neighbor with the most
  /// headroom — and re-bootstraps the affected networks.
  struct Report {
    bool satisfied{false};
    /// HARP messages inside the requesting network (adjustment path).
    std::size_t intra_messages{0};
    /// Networks whose band moved (each costs a network-wide re-brief).
    std::size_t networks_rebanded{0};
  };
  Report request_demand(NetworkId id, NodeId child, Direction dir,
                        int cells);

  /// Cross-network isolation check: every pair of global schedules must
  /// be channel-disjoint, and each network internally valid. "" = OK.
  std::string validate() const;

 private:
  struct Network {
    NetworkSpec spec;
    Band band;
    std::unique_ptr<core::HarpEngine> engine;
  };

  /// Builds an engine for `spec` with the given band width; nullopt when
  /// inadmissible.
  static std::unique_ptr<core::HarpEngine> try_build(const NetworkSpec& spec,
                                                     ChannelId width);
  /// Re-packs all bands left-to-right in id order (widths given).
  void layout_bands();

  ChannelId total_;
  std::vector<Network> networks_;
};

}  // namespace harp::coexist
