#include "packing/validate.hpp"

#include <algorithm>
#include <tuple>

namespace harp::packing {

std::string validate_packing(const std::vector<Placement>& placements,
                             Dim width, Dim height,
                             const std::vector<Rect>* expected) {
  for (const Placement& p : placements) {
    if (p.w <= 0 || p.h <= 0) {
      return "non-positive placement dimensions: " + to_string(p);
    }
    if (p.x < 0 || p.y < 0 || p.right() > width ||
        (height >= 0 && p.top() > height)) {
      return "placement out of bounds: " + to_string(p);
    }
  }
  for (std::size_t i = 0; i < placements.size(); ++i) {
    for (std::size_t j = i + 1; j < placements.size(); ++j) {
      if (placements[i].overlaps(placements[j])) {
        return "overlap between " + to_string(placements[i]) + " and " +
               to_string(placements[j]);
      }
    }
  }
  if (expected != nullptr) {
    if (expected->size() != placements.size()) {
      return "placement count mismatch: got " +
             std::to_string(placements.size()) + ", expected " +
             std::to_string(expected->size());
    }
    auto key = [](Dim w, Dim h, std::uint64_t id) {
      return std::tuple(w, h, id);
    };
    std::vector<std::tuple<Dim, Dim, std::uint64_t>> got, want;
    got.reserve(placements.size());
    want.reserve(expected->size());
    for (const Placement& p : placements) got.push_back(key(p.w, p.h, p.id));
    for (const Rect& r : *expected) want.push_back(key(r.w, r.h, r.id));
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) return "placed rectangles do not match the input set";
  }
  return {};
}

bool placements_disjoint(const std::vector<Placement>& placements) {
  for (std::size_t i = 0; i < placements.size(); ++i) {
    for (std::size_t j = i + 1; j < placements.size(); ++j) {
      if (placements[i].overlaps(placements[j])) return false;
    }
  }
  return true;
}

}  // namespace harp::packing
