#include "packing/shelf.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace harp::packing {
namespace {

struct Shelf {
  Dim y;       // bottom of the shelf
  Dim height;  // height of the tallest rectangle on it
  Dim used;    // occupied width
};

void check_inputs(const std::vector<Rect>& rects, Dim strip_width) {
  if (strip_width <= 0) throw InvalidArgument("strip width must be positive");
  for (const Rect& r : rects) {
    if (r.w <= 0 || r.h <= 0) {
      throw InvalidArgument("rectangle dimensions must be positive: " +
                            to_string(r));
    }
    if (r.w > strip_width) {
      throw InvalidArgument("rectangle wider than strip: " + to_string(r));
    }
  }
}

void sort_decreasing_height(std::vector<Rect>& rects) {
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    if (a.h != b.h) return a.h > b.h;
    if (a.w != b.w) return a.w > b.w;
    return a.id < b.id;
  });
}

StripResult pack_shelves(std::vector<Rect> rects, Dim strip_width,
                         bool first_fit) {
  check_inputs(rects, strip_width);
  sort_decreasing_height(rects);

  StripResult result;
  std::vector<Shelf> shelves;
  for (const Rect& r : rects) {
    Shelf* target = nullptr;
    if (first_fit) {
      for (Shelf& s : shelves) {
        if (s.used + r.w <= strip_width) {
          target = &s;
          break;
        }
      }
    } else if (!shelves.empty() &&
               shelves.back().used + r.w <= strip_width) {
      target = &shelves.back();
    }
    if (target == nullptr) {
      const Dim y = shelves.empty()
                        ? 0
                        : shelves.back().y + shelves.back().height;
      shelves.push_back({y, r.h, 0});
      target = &shelves.back();
    }
    result.placements.push_back({target->used, target->y, r.w, r.h, r.id});
    target->used += r.w;
    // Heights are non-increasing within a pass, so the first rectangle on
    // a shelf fixes its height.
    result.height = std::max(result.height, target->y + target->height);
  }
  return result;
}

}  // namespace

StripResult pack_ffdh(std::vector<Rect> rects, Dim strip_width) {
  return pack_shelves(std::move(rects), strip_width, /*first_fit=*/true);
}

StripResult pack_nfdh(std::vector<Rect> rects, Dim strip_width) {
  return pack_shelves(std::move(rects), strip_width, /*first_fit=*/false);
}

}  // namespace harp::packing
