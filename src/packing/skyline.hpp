// Best-fit skyline heuristic for the 2-D Strip Packing Problem (SPP).
//
// This is the solver the paper deploys for Resource Component Composition
// (Alg. 1): given rectangles and a strip of fixed width, find an
// overlap-free packing minimizing the strip height. The heuristic follows
// the best-fit skyline family (Burke et al. 2004; Wei et al. 2017 [24]):
// it maintains the skyline of placed rectangles, repeatedly fills the
// lowest gap with the best-fitting remaining rectangle, and lifts gaps
// that fit nothing. Complexity O(n^2) worst case with tiny constants --
// cheap enough for the paper's target class of devices (n is the number
// of child subtrees, single digits in practice).
//
// Two implementations share the exact selection and placement policy and
// produce bit-identical results (docs/KERNELS.md):
//   * pack_strip_into — the default struct-of-arrays kernel: skyline
//     x/height lanes and packed best-fit keys live in contiguous uint32/
//     uint64 arrays carved from the scratch's FlatArena;
//   * pack_strip_reference_into — the original scalar AoS path, kept as
//     the differential-test oracle and as the automatic fallback for
//     inputs whose coordinates do not fit the 32-bit lanes.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "packing/rect.hpp"

namespace harp::packing {

/// Reusable buffers for pack_strip_into. All intermediate state of one
/// packing run (the sorted rect copy and the kernel's working arrays)
/// lives here, so a caller that keeps a scratch across runs packs without
/// allocating once the high-water capacity is reached — the contract the
/// engine's recomputation hot path and the per-worker arenas of parallel
/// composition rely on (docs/PERFORMANCE.md, docs/KERNELS.md).
struct PackScratch {
  /// One maximal horizontal segment of the skyline: the region
  /// [x, x+w) currently topped at height y. (Reference path only; the
  /// SoA kernel keeps the skyline as x/height lanes in `arena`.)
  struct Segment {
    Dim x;
    Dim w;
    Dim y;
  };

  std::vector<Rect> rects;
  std::vector<char> placed;        // reference path
  std::vector<Segment> segments;   // reference path
  FlatArena arena;                 // SoA lanes: keys, skyline x/y
};

/// Packs `rects` into a strip of width `strip_width`, minimizing height.
/// Every rectangle must satisfy 0 < w <= strip_width and h > 0.
/// Throws InvalidArgument otherwise. Deterministic.
StripResult pack_strip(std::vector<Rect> rects, Dim strip_width);

/// Scratch-reusing core of pack_strip: byte-identical result, but every
/// intermediate buffer comes from `scratch` and the placements are written
/// into `out` (whose capacity is reused). The only possible allocations
/// are capacity growth beyond the scratch's high-water mark.
void pack_strip_into(std::span<const Rect> rects, Dim strip_width,
                     PackScratch& scratch, StripResult& out);

/// The original scalar implementation, bit-identical to pack_strip_into
/// by contract. Serves as the oracle of the randomized differential tests
/// (tests/packing_test.cpp) and as pack_strip_into's fallback when
/// strip_width or the total stacked height exceeds the SoA kernel's
/// 32-bit coordinate range.
void pack_strip_reference_into(std::span<const Rect> rects, Dim strip_width,
                               PackScratch& scratch, StripResult& out);

/// Same as pack_strip but fails (nullopt) if the achieved height would
/// exceed `max_height`. Used for feasibility checks where the container
/// has both dimensions fixed.
std::optional<StripResult> pack_strip_bounded(std::vector<Rect> rects,
                                              Dim strip_width, Dim max_height);

/// Simple lower bounds on the optimal strip height: max(total area /
/// width, tallest rectangle). Useful for tests and benchmark reporting.
Dim strip_height_lower_bound(const std::vector<Rect>& rects, Dim strip_width);

}  // namespace harp::packing
