// Best-fit skyline heuristic for the 2-D Strip Packing Problem (SPP).
//
// This is the solver the paper deploys for Resource Component Composition
// (Alg. 1): given rectangles and a strip of fixed width, find an
// overlap-free packing minimizing the strip height. The heuristic follows
// the best-fit skyline family (Burke et al. 2004; Wei et al. 2017 [24]):
// it maintains the skyline of placed rectangles, repeatedly fills the
// lowest gap with the best-fitting remaining rectangle, and lifts gaps
// that fit nothing. Complexity O(n^2) worst case with tiny constants --
// cheap enough for the paper's target class of devices (n is the number
// of child subtrees, single digits in practice).
#pragma once

#include <optional>
#include <vector>

#include "packing/rect.hpp"

namespace harp::packing {

/// Packs `rects` into a strip of width `strip_width`, minimizing height.
/// Every rectangle must satisfy 0 < w <= strip_width and h > 0.
/// Throws InvalidArgument otherwise. Deterministic.
StripResult pack_strip(std::vector<Rect> rects, Dim strip_width);

/// Same as pack_strip but fails (nullopt) if the achieved height would
/// exceed `max_height`. Used for feasibility checks where the container
/// has both dimensions fixed.
std::optional<StripResult> pack_strip_bounded(std::vector<Rect> rects,
                                              Dim strip_width, Dim max_height);

/// Simple lower bounds on the optimal strip height: max(total area /
/// width, tallest rectangle). Useful for tests and benchmark reporting.
Dim strip_height_lower_bound(const std::vector<Rect>& rects, Dim strip_width);

}  // namespace harp::packing
