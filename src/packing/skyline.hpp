// Best-fit skyline heuristic for the 2-D Strip Packing Problem (SPP).
//
// This is the solver the paper deploys for Resource Component Composition
// (Alg. 1): given rectangles and a strip of fixed width, find an
// overlap-free packing minimizing the strip height. The heuristic follows
// the best-fit skyline family (Burke et al. 2004; Wei et al. 2017 [24]):
// it maintains the skyline of placed rectangles, repeatedly fills the
// lowest gap with the best-fitting remaining rectangle, and lifts gaps
// that fit nothing. Complexity O(n^2) worst case with tiny constants --
// cheap enough for the paper's target class of devices (n is the number
// of child subtrees, single digits in practice).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "packing/rect.hpp"

namespace harp::packing {

/// Reusable buffers for pack_strip_into. All intermediate state of one
/// packing run (the sorted rect copy, placed flags and the skyline's
/// segment list) lives here, so a caller that keeps a scratch across runs
/// packs without allocating once the high-water capacity is reached —
/// the contract the engine's recomputation hot path and the per-worker
/// arenas of parallel composition rely on (docs/PERFORMANCE.md).
struct PackScratch {
  /// One maximal horizontal segment of the skyline: the region
  /// [x, x+w) currently topped at height y.
  struct Segment {
    Dim x;
    Dim w;
    Dim y;
  };

  std::vector<Rect> rects;
  std::vector<char> placed;
  std::vector<Segment> segments;
};

/// Packs `rects` into a strip of width `strip_width`, minimizing height.
/// Every rectangle must satisfy 0 < w <= strip_width and h > 0.
/// Throws InvalidArgument otherwise. Deterministic.
StripResult pack_strip(std::vector<Rect> rects, Dim strip_width);

/// Scratch-reusing core of pack_strip: byte-identical result, but every
/// intermediate buffer comes from `scratch` and the placements are written
/// into `out` (whose capacity is reused). The only possible allocations
/// are capacity growth beyond the scratch's high-water mark.
void pack_strip_into(std::span<const Rect> rects, Dim strip_width,
                     PackScratch& scratch, StripResult& out);

/// Same as pack_strip but fails (nullopt) if the achieved height would
/// exceed `max_height`. Used for feasibility checks where the container
/// has both dimensions fixed.
std::optional<StripResult> pack_strip_bounded(std::vector<Rect> rects,
                                              Dim strip_width, Dim max_height);

/// Simple lower bounds on the optimal strip height: max(total area /
/// width, tallest rectangle). Useful for tests and benchmark reporting.
Dim strip_height_lower_bound(const std::vector<Rect>& rects, Dim strip_width);

}  // namespace harp::packing
