#include "packing/skyline.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace harp::packing {
namespace {

using Segment = PackScratch::Segment;

/// Skyline over an externally owned segment buffer (PackScratch), so
/// repeated packings reuse its capacity. Mutations are in place: place()
/// splices at most three segments over one, merge() compacts with a
/// two-pointer sweep — no temporary vectors.
class Skyline {
 public:
  Skyline(std::vector<Segment>& segments, Dim width) : segments_(segments) {
    segments_.clear();
    segments_.push_back({0, width, 0});
  }

  /// Index of the lowest segment (leftmost on ties).
  std::size_t lowest() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < segments_.size(); ++i) {
      if (segments_[i].y < segments_[best].y) best = i;
    }
    return best;
  }

  const Segment& at(std::size_t i) const { return segments_[i]; }
  std::size_t size() const { return segments_.size(); }

  /// Height of the segment left of i (infinite at the strip wall).
  Dim left_wall(std::size_t i) const {
    return i == 0 ? std::numeric_limits<Dim>::max() : segments_[i - 1].y;
  }

  /// Height of the segment right of i (infinite at the strip wall).
  Dim right_wall(std::size_t i) const {
    return i + 1 >= segments_.size() ? std::numeric_limits<Dim>::max()
                                     : segments_[i + 1].y;
  }

  /// Places a w x h rectangle into segment i. It is put against the taller
  /// of the two walls (Burke et al.'s placement policy), which tends to
  /// leave one larger gap instead of two small ones. Returns the placement
  /// x coordinate.
  Dim place(std::size_t i, Dim w, Dim h) {
    const Segment seg = segments_[i];
    HARP_ASSERT(w <= seg.w);
    const bool against_left = left_wall(i) >= right_wall(i);
    const Dim px = against_left ? seg.x : seg.x + seg.w - w;
    const Dim new_y = seg.y + h;

    Segment pieces[3];
    std::size_t n = 0;
    if (px > seg.x) pieces[n++] = {seg.x, px - seg.x, seg.y};
    pieces[n++] = {px, w, new_y};
    if (px + w < seg.x + seg.w) {
      pieces[n++] = {px + w, seg.x + seg.w - (px + w), seg.y};
    }
    segments_.insert(
        segments_.begin() + static_cast<std::ptrdiff_t>(i) + 1, n - 1,
        Segment{});
    std::copy(pieces, pieces + n,
              segments_.begin() + static_cast<std::ptrdiff_t>(i));
    merge();
    return px;
  }

  /// No rectangle fits segment i: raise it to the lower neighboring wall,
  /// conceding that area as waste, and merge.
  void lift(std::size_t i) {
    const Dim target = std::min(left_wall(i), right_wall(i));
    HARP_ASSERT(target < std::numeric_limits<Dim>::max());
    segments_[i].y = target;
    merge();
  }

 private:
  void merge() {
    std::size_t out = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (out > 0 && segments_[out - 1].y == segments_[i].y) {
        segments_[out - 1].w += segments_[i].w;
      } else {
        segments_[out++] = segments_[i];
      }
    }
    segments_.resize(out);
  }

  std::vector<Segment>& segments_;
};

void check_inputs(std::span<const Rect> rects, Dim strip_width) {
  if (strip_width <= 0) {
    throw InvalidArgument("strip width must be positive");
  }
  for (const Rect& r : rects) {
    if (r.w <= 0 || r.h <= 0) {
      throw InvalidArgument("rectangle dimensions must be positive: " +
                            to_string(r));
    }
    if (r.w > strip_width) {
      throw InvalidArgument("rectangle wider than strip: " + to_string(r));
    }
  }
}

}  // namespace

void pack_strip_into(std::span<const Rect> rects, Dim strip_width,
                     PackScratch& scratch, StripResult& out) {
  check_inputs(rects, strip_width);

  out.height = 0;
  out.placements.clear();
  out.placements.reserve(rects.size());

  // Presorting by decreasing height (width as tie-break) improves the
  // best-fit policy's packing density; the per-step choice below still
  // re-examines every unplaced rectangle.
  std::vector<Rect>& sorted = scratch.rects;
  sorted.assign(rects.begin(), rects.end());
  std::sort(sorted.begin(), sorted.end(), [](const Rect& a, const Rect& b) {
    if (a.h != b.h) return a.h > b.h;
    if (a.w != b.w) return a.w > b.w;
    return a.id < b.id;
  });
  std::vector<char>& placed = scratch.placed;
  placed.assign(sorted.size(), 0);
  std::size_t remaining = sorted.size();

  Skyline skyline(scratch.segments, strip_width);
  while (remaining > 0) {
    const std::size_t seg_idx = skyline.lowest();
    const Segment seg{skyline.at(seg_idx)};

    // Best fit: among rectangles that fit the gap width, prefer the one
    // filling it exactly; otherwise the widest, then the tallest. Exact
    // width fills eliminate the gap, keeping the skyline flat.
    std::size_t best = sorted.size();
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (placed[i] != 0 || sorted[i].w > seg.w) continue;
      if (best == sorted.size()) {
        best = i;
        continue;
      }
      const Rect& cand = sorted[i];
      const Rect& cur = sorted[best];
      const bool cand_exact = cand.w == seg.w;
      const bool cur_exact = cur.w == seg.w;
      if (cand_exact != cur_exact) {
        if (cand_exact) best = i;
        continue;
      }
      if (cand.w != cur.w) {
        if (cand.w > cur.w) best = i;
        continue;
      }
      if (cand.h > cur.h) best = i;
    }

    if (best == sorted.size()) {
      skyline.lift(seg_idx);
      continue;
    }

    const Rect& r = sorted[best];
    const Dim px = skyline.place(seg_idx, r.w, r.h);
    out.placements.push_back({px, seg.y, r.w, r.h, r.id});
    out.height = std::max(out.height, seg.y + r.h);
    placed[best] = 1;
    --remaining;
  }
}

StripResult pack_strip(std::vector<Rect> rects, Dim strip_width) {
  // Per-thread scratch: every caller — including each worker of parallel
  // interface composition — reuses its own buffers across packings.
  thread_local PackScratch scratch;
  StripResult out;
  pack_strip_into(rects, strip_width, scratch, out);
  return out;
}

std::optional<StripResult> pack_strip_bounded(std::vector<Rect> rects,
                                              Dim strip_width,
                                              Dim max_height) {
  for (const Rect& r : rects) {
    if (r.h > max_height) return std::nullopt;
  }
  StripResult result = pack_strip(std::move(rects), strip_width);
  if (result.height > max_height) return std::nullopt;
  return result;
}

Dim strip_height_lower_bound(const std::vector<Rect>& rects, Dim strip_width) {
  HARP_ASSERT(strip_width > 0);
  Dim area = 0;
  Dim tallest = 0;
  for (const Rect& r : rects) {
    area += r.area();
    tallest = std::max(tallest, r.h);
  }
  const Dim by_area = (area + strip_width - 1) / strip_width;
  return std::max(by_area, tallest);
}

}  // namespace harp::packing
