#include "packing/skyline.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace harp::packing {
namespace {

/// One maximal horizontal segment of the skyline: the region
/// [x, x+w) currently topped at height y.
struct Segment {
  Dim x;
  Dim w;
  Dim y;
};

class Skyline {
 public:
  explicit Skyline(Dim width) : width_(width) {
    segments_.push_back({0, width, 0});
  }

  /// Index of the lowest segment (leftmost on ties).
  std::size_t lowest() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < segments_.size(); ++i) {
      if (segments_[i].y < segments_[best].y) best = i;
    }
    return best;
  }

  const Segment& at(std::size_t i) const { return segments_[i]; }
  std::size_t size() const { return segments_.size(); }

  /// Height of the segment left of i (infinite at the strip wall).
  Dim left_wall(std::size_t i) const {
    return i == 0 ? std::numeric_limits<Dim>::max() : segments_[i - 1].y;
  }

  /// Height of the segment right of i (infinite at the strip wall).
  Dim right_wall(std::size_t i) const {
    return i + 1 >= segments_.size() ? std::numeric_limits<Dim>::max()
                                     : segments_[i + 1].y;
  }

  /// Places a w x h rectangle into segment i. It is put against the taller
  /// of the two walls (Burke et al.'s placement policy), which tends to
  /// leave one larger gap instead of two small ones. Returns the placement
  /// x coordinate.
  Dim place(std::size_t i, Dim w, Dim h) {
    Segment seg = segments_[i];
    HARP_ASSERT(w <= seg.w);
    const bool against_left = left_wall(i) >= right_wall(i);
    const Dim px = against_left ? seg.x : seg.x + seg.w - w;
    const Dim new_y = seg.y + h;

    std::vector<Segment> replacement;
    if (px > seg.x) replacement.push_back({seg.x, px - seg.x, seg.y});
    replacement.push_back({px, w, new_y});
    if (px + w < seg.x + seg.w) {
      replacement.push_back({px + w, seg.x + seg.w - (px + w), seg.y});
    }
    segments_.erase(segments_.begin() + static_cast<std::ptrdiff_t>(i));
    segments_.insert(segments_.begin() + static_cast<std::ptrdiff_t>(i),
                     replacement.begin(), replacement.end());
    merge();
    return px;
  }

  /// No rectangle fits segment i: raise it to the lower neighboring wall,
  /// conceding that area as waste, and merge.
  void lift(std::size_t i) {
    const Dim target = std::min(left_wall(i), right_wall(i));
    HARP_ASSERT(target < std::numeric_limits<Dim>::max());
    segments_[i].y = target;
    merge();
  }

 private:
  void merge() {
    std::vector<Segment> merged;
    for (const Segment& s : segments_) {
      if (!merged.empty() && merged.back().y == s.y) {
        merged.back().w += s.w;
      } else {
        merged.push_back(s);
      }
    }
    segments_ = std::move(merged);
  }

  Dim width_;
  std::vector<Segment> segments_;
};

void check_inputs(const std::vector<Rect>& rects, Dim strip_width) {
  if (strip_width <= 0) {
    throw InvalidArgument("strip width must be positive");
  }
  for (const Rect& r : rects) {
    if (r.w <= 0 || r.h <= 0) {
      throw InvalidArgument("rectangle dimensions must be positive: " +
                            to_string(r));
    }
    if (r.w > strip_width) {
      throw InvalidArgument("rectangle wider than strip: " + to_string(r));
    }
  }
}

}  // namespace

StripResult pack_strip(std::vector<Rect> rects, Dim strip_width) {
  check_inputs(rects, strip_width);

  StripResult result;
  result.placements.reserve(rects.size());

  // Presorting by decreasing height (width as tie-break) improves the
  // best-fit policy's packing density; the per-step choice below still
  // re-examines every unplaced rectangle.
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    if (a.h != b.h) return a.h > b.h;
    if (a.w != b.w) return a.w > b.w;
    return a.id < b.id;
  });
  std::vector<bool> placed(rects.size(), false);
  std::size_t remaining = rects.size();

  Skyline skyline(strip_width);
  while (remaining > 0) {
    const std::size_t seg_idx = skyline.lowest();
    const Segment seg{skyline.at(seg_idx)};

    // Best fit: among rectangles that fit the gap width, prefer the one
    // filling it exactly; otherwise the widest, then the tallest. Exact
    // width fills eliminate the gap, keeping the skyline flat.
    std::size_t best = rects.size();
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (placed[i] || rects[i].w > seg.w) continue;
      if (best == rects.size()) {
        best = i;
        continue;
      }
      const Rect& cand = rects[i];
      const Rect& cur = rects[best];
      const bool cand_exact = cand.w == seg.w;
      const bool cur_exact = cur.w == seg.w;
      if (cand_exact != cur_exact) {
        if (cand_exact) best = i;
        continue;
      }
      if (cand.w != cur.w) {
        if (cand.w > cur.w) best = i;
        continue;
      }
      if (cand.h > cur.h) best = i;
    }

    if (best == rects.size()) {
      skyline.lift(seg_idx);
      continue;
    }

    const Rect& r = rects[best];
    const Dim px = skyline.place(seg_idx, r.w, r.h);
    result.placements.push_back({px, seg.y, r.w, r.h, r.id});
    result.height = std::max(result.height, seg.y + r.h);
    placed[best] = true;
    --remaining;
  }
  return result;
}

std::optional<StripResult> pack_strip_bounded(std::vector<Rect> rects,
                                              Dim strip_width,
                                              Dim max_height) {
  for (const Rect& r : rects) {
    if (r.h > max_height) return std::nullopt;
  }
  StripResult result = pack_strip(std::move(rects), strip_width);
  if (result.height > max_height) return std::nullopt;
  return result;
}

Dim strip_height_lower_bound(const std::vector<Rect>& rects, Dim strip_width) {
  HARP_ASSERT(strip_width > 0);
  Dim area = 0;
  Dim tallest = 0;
  for (const Rect& r : rects) {
    area += r.area();
    tallest = std::max(tallest, r.h);
  }
  const Dim by_area = (area + strip_width - 1) / strip_width;
  return std::max(by_area, tallest);
}

}  // namespace harp::packing
