#include "packing/skyline.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace harp::packing {
namespace {

using Segment = PackScratch::Segment;

/// Skyline over an externally owned segment buffer (PackScratch), so
/// repeated packings reuse its capacity. Mutations are in place: place()
/// splices at most three segments over one, merge() compacts with a
/// two-pointer sweep — no temporary vectors.
class Skyline {
 public:
  Skyline(std::vector<Segment>& segments, Dim width) : segments_(segments) {
    segments_.clear();
    segments_.push_back({0, width, 0});
  }

  /// Index of the lowest segment (leftmost on ties).
  std::size_t lowest() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < segments_.size(); ++i) {
      if (segments_[i].y < segments_[best].y) best = i;
    }
    return best;
  }

  const Segment& at(std::size_t i) const { return segments_[i]; }
  std::size_t size() const { return segments_.size(); }

  /// Height of the segment left of i (infinite at the strip wall).
  Dim left_wall(std::size_t i) const {
    return i == 0 ? std::numeric_limits<Dim>::max() : segments_[i - 1].y;
  }

  /// Height of the segment right of i (infinite at the strip wall).
  Dim right_wall(std::size_t i) const {
    return i + 1 >= segments_.size() ? std::numeric_limits<Dim>::max()
                                     : segments_[i + 1].y;
  }

  /// Places a w x h rectangle into segment i. It is put against the taller
  /// of the two walls (Burke et al.'s placement policy), which tends to
  /// leave one larger gap instead of two small ones. Returns the placement
  /// x coordinate.
  Dim place(std::size_t i, Dim w, Dim h) {
    const Segment seg = segments_[i];
    HARP_ASSERT(w <= seg.w);
    const bool against_left = left_wall(i) >= right_wall(i);
    const Dim px = against_left ? seg.x : seg.x + seg.w - w;
    const Dim new_y = seg.y + h;

    Segment pieces[3];
    std::size_t n = 0;
    if (px > seg.x) pieces[n++] = {seg.x, px - seg.x, seg.y};
    pieces[n++] = {px, w, new_y};
    if (px + w < seg.x + seg.w) {
      pieces[n++] = {px + w, seg.x + seg.w - (px + w), seg.y};
    }
    segments_.insert(
        segments_.begin() + static_cast<std::ptrdiff_t>(i) + 1, n - 1,
        Segment{});
    std::copy(pieces, pieces + n,
              segments_.begin() + static_cast<std::ptrdiff_t>(i));
    merge();
    return px;
  }

  /// No rectangle fits segment i: raise it to the lower neighboring wall,
  /// conceding that area as waste, and merge.
  void lift(std::size_t i) {
    const Dim target = std::min(left_wall(i), right_wall(i));
    HARP_ASSERT(target < std::numeric_limits<Dim>::max());
    segments_[i].y = target;
    merge();
  }

 private:
  void merge() {
    std::size_t out = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (out > 0 && segments_[out - 1].y == segments_[i].y) {
        segments_[out - 1].w += segments_[i].w;
      } else {
        segments_[out++] = segments_[i];
      }
    }
    segments_.resize(out);
  }

  std::vector<Segment>& segments_;
};

void check_inputs(std::span<const Rect> rects, Dim strip_width) {
  if (strip_width <= 0) {
    throw InvalidArgument("strip width must be positive");
  }
  for (const Rect& r : rects) {
    if (r.w <= 0 || r.h <= 0) {
      throw InvalidArgument("rectangle dimensions must be positive: " +
                            to_string(r));
    }
    if (r.w > strip_width) {
      throw InvalidArgument("rectangle wider than strip: " + to_string(r));
    }
  }
}

/// Presort order shared by both kernels: decreasing height (width as
/// tie-break) improves the best-fit policy's packing density; the per-step
/// choice still re-examines every unplaced rectangle.
bool rect_before(const Rect& a, const Rect& b) {
  if (a.h != b.h) return a.h > b.h;
  if (a.w != b.w) return a.w > b.w;
  return a.id < b.id;
}

void sort_rects(std::span<const Rect> rects, std::vector<Rect>& sorted) {
  sorted.assign(rects.begin(), rects.end());
  std::sort(sorted.begin(), sorted.end(), rect_before);
}

// ---------------------------------------------------------------------------
// SoA kernel (docs/KERNELS.md). The skyline lives in two parallel uint32
// lanes carved from the scratch arena:
//   sky_x[0..m]   segment left edges, sky_x[m] = strip width sentinel
//                 (segment i spans [sky_x[i], sky_x[i+1]));
//   sky_y[0..m)   segment heights.
// The candidate set is a single uint64 lane of packed best-fit keys,
//   key[i] = (w << 32) | h, key[i] = 0 once placed,
// because the scalar policy "prefer the exact-width fill, else the
// widest, else the tallest, earliest on ties" is exactly the lexicographic
// argmax of (w, h) over the rects that fit (an exact-width fill IS the
// maximal fitting width). "Fits gap g" becomes key < (g+1) << 32, and the
// whole selection is one branch-light max scan.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kWallInf = std::numeric_limits<std::uint32_t>::max();
/// Largest coordinate the 32-bit lanes can represent while keeping
/// kWallInf free as the "infinite wall" sentinel.
constexpr std::uint64_t kMaxCoord = kWallInf - 1;

struct SkylineSoA {
  std::uint32_t* x;  // m + 1 entries, x[m] = strip width
  std::uint32_t* y;  // m entries
  std::size_t m{0};

  std::size_t lowest() const {
    std::size_t best = 0;
    std::uint32_t best_y = y[0];
    for (std::size_t i = 1; i < m; ++i) {
      const bool lower = y[i] < best_y;
      best = lower ? i : best;
      best_y = lower ? y[i] : best_y;
    }
    return best;
  }

  std::uint32_t left_wall(std::size_t i) const {
    return i == 0 ? kWallInf : y[i - 1];
  }
  std::uint32_t right_wall(std::size_t i) const {
    return i + 1 >= m ? kWallInf : y[i + 1];
  }

  /// Same splice as the reference Skyline::place, on the flat lanes: the
  /// replaced segment becomes up to three, the tail (including the x
  /// sentinel) shifts with two memmoves.
  std::uint32_t place(std::size_t i, std::uint32_t w, std::uint32_t h) {
    const std::uint32_t x0 = x[i];
    const std::uint32_t x1 = x[i + 1];
    const std::uint32_t y0 = y[i];
    HARP_ASSERT(w <= x1 - x0);
    const bool against_left = left_wall(i) >= right_wall(i);
    const std::uint32_t px = against_left ? x0 : x1 - w;
    const std::uint32_t new_y = y0 + h;

    std::uint32_t pxs[3];
    std::uint32_t pys[3];
    std::size_t n = 0;
    if (px > x0) {
      pxs[n] = x0;
      pys[n] = y0;
      ++n;
    }
    pxs[n] = px;
    pys[n] = new_y;
    ++n;
    if (px + w < x1) {
      pxs[n] = px + w;
      pys[n] = y0;
      ++n;
    }
    const std::size_t extra = n - 1;
    if (extra > 0) {
      std::memmove(x + i + n, x + i + 1, (m - i) * sizeof(std::uint32_t));
      std::memmove(y + i + n, y + i + 1,
                   (m - i - 1) * sizeof(std::uint32_t));
    }
    for (std::size_t k = 0; k < n; ++k) {
      x[i + k] = pxs[k];
      y[i + k] = pys[k];
    }
    m += extra;
    merge();
    return px;
  }

  void lift(std::size_t i) {
    const std::uint32_t target = std::min(left_wall(i), right_wall(i));
    HARP_ASSERT(target < kWallInf);
    y[i] = target;
    merge();
  }

  /// Two-pointer compaction of equal-height neighbors. Widths are implied
  /// by the x lane, so absorbing a segment is simply dropping its entries;
  /// the sentinel x[m] carries over untouched.
  void merge() {
    std::size_t out = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (out > 0 && y[out - 1] == y[i]) continue;
      x[out] = x[i];
      y[out] = y[i];
      ++out;
    }
    x[out] = x[m];
    m = out;
  }
};

/// True when every coordinate of this run fits the uint32 lanes: the strip
/// width, and the largest height the skyline can ever reach (bounded by
/// the total stacked height — each placement raises one segment by its h,
/// and lifts never exceed an existing height).
bool fits_soa_lanes(std::span<const Rect> rects, Dim strip_width) {
  if (static_cast<std::uint64_t>(strip_width) > kMaxCoord) return false;
  std::uint64_t total_h = 0;
  for (const Rect& r : rects) {
    total_h += static_cast<std::uint64_t>(r.h);
    if (total_h > kMaxCoord) return false;
  }
  return true;
}

/// Inputs of at most this many rects — virtually every composition the
/// engine performs — run on stack lanes with an inline insertion sort,
/// skipping the scratch vectors and the arena altogether.
constexpr std::size_t kSmallN = 16;

void pack_strip_soa(std::span<const Rect> rects, Dim strip_width,
                    PackScratch& scratch, StripResult& out) {
  const std::size_t n = rects.size();
  std::size_t remaining = n;

  Rect small_sorted[kSmallN];
  std::uint64_t small_keys[kSmallN];
  std::uint32_t small_x[2 * kSmallN + 2];
  std::uint32_t small_y[2 * kSmallN + 2];

  const Rect* sorted;
  std::uint64_t* keys;
  SkylineSoA sky;
  if (n <= kSmallN) {
    // Insertion sort with the same comparator: rect keys are unique per
    // input (or fully identical), so any comparison sort yields the same
    // order — and thus the same placements — as the general path.
    std::size_t count = 0;
    for (const Rect& r : rects) {
      std::size_t j = count;
      while (j > 0 && rect_before(r, small_sorted[j - 1])) {
        small_sorted[j] = small_sorted[j - 1];
        --j;
      }
      small_sorted[j] = r;
      ++count;
    }
    sorted = small_sorted;
    keys = small_keys;
    sky = SkylineSoA{small_x, small_y, 1};
  } else {
    sort_rects(rects, scratch.rects);
    sorted = scratch.rects.data();
    // One arena carve per run; reset() makes it free once the scratch has
    // seen its largest input (docs/KERNELS.md "Arena lifetime").
    scratch.arena.reset();
    keys = scratch.arena.alloc<std::uint64_t>(n);
    // Each placement splices at most two extra segments (net, pre-merge),
    // so m <= 2n + 1 throughout; +1 lane slot for the x sentinel.
    sky = SkylineSoA{scratch.arena.alloc<std::uint32_t>(2 * n + 2),
                     scratch.arena.alloc<std::uint32_t>(2 * n + 2), 1};
  }
  sky.x[0] = 0;
  sky.x[1] = static_cast<std::uint32_t>(strip_width);
  sky.y[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = (static_cast<std::uint64_t>(sorted[i].w) << 32) |
              static_cast<std::uint64_t>(sorted[i].h);
  }

  while (remaining > 0) {
    const std::size_t seg_idx = sky.lowest();
    const std::uint32_t seg_y = sky.y[seg_idx];
    const std::uint32_t seg_w = sky.x[seg_idx + 1] - sky.x[seg_idx];

    // Branch-light best fit: strict max over the packed keys; placed
    // rects carry key 0 and a key compares greater exactly when the rect
    // is wider, or equally wide and taller. Earliest index wins ties.
    const std::uint64_t limit = (static_cast<std::uint64_t>(seg_w) + 1)
                                << 32;
    std::uint64_t best_key = 0;
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = keys[i];
      const bool better = (k < limit) & (k > best_key);
      best = better ? i : best;
      best_key = better ? k : best_key;
    }

    if (best == n) {
      sky.lift(seg_idx);
      continue;
    }

    const Rect& r = sorted[best];
    const std::uint32_t px = sky.place(seg_idx, static_cast<std::uint32_t>(r.w),
                                       static_cast<std::uint32_t>(r.h));
    out.placements.push_back({static_cast<Dim>(px), static_cast<Dim>(seg_y),
                              r.w, r.h, r.id});
    out.height = std::max(out.height, static_cast<Dim>(seg_y) + r.h);
    keys[best] = 0;
    --remaining;
  }
}

}  // namespace

void pack_strip_reference_into(std::span<const Rect> rects, Dim strip_width,
                               PackScratch& scratch, StripResult& out) {
  check_inputs(rects, strip_width);

  out.height = 0;
  out.placements.clear();
  out.placements.reserve(rects.size());

  sort_rects(rects, scratch.rects);
  const std::vector<Rect>& sorted = scratch.rects;
  std::vector<char>& placed = scratch.placed;
  placed.assign(sorted.size(), 0);
  std::size_t remaining = sorted.size();

  Skyline skyline(scratch.segments, strip_width);
  while (remaining > 0) {
    const std::size_t seg_idx = skyline.lowest();
    const Segment seg{skyline.at(seg_idx)};

    // Best fit: among rectangles that fit the gap width, prefer the one
    // filling it exactly; otherwise the widest, then the tallest. Exact
    // width fills eliminate the gap, keeping the skyline flat.
    std::size_t best = sorted.size();
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (placed[i] != 0 || sorted[i].w > seg.w) continue;
      if (best == sorted.size()) {
        best = i;
        continue;
      }
      const Rect& cand = sorted[i];
      const Rect& cur = sorted[best];
      const bool cand_exact = cand.w == seg.w;
      const bool cur_exact = cur.w == seg.w;
      if (cand_exact != cur_exact) {
        if (cand_exact) best = i;
        continue;
      }
      if (cand.w != cur.w) {
        if (cand.w > cur.w) best = i;
        continue;
      }
      if (cand.h > cur.h) best = i;
    }

    if (best == sorted.size()) {
      skyline.lift(seg_idx);
      continue;
    }

    const Rect& r = sorted[best];
    const Dim px = skyline.place(seg_idx, r.w, r.h);
    out.placements.push_back({px, seg.y, r.w, r.h, r.id});
    out.height = std::max(out.height, seg.y + r.h);
    placed[best] = 1;
    --remaining;
  }
}

void pack_strip_into(std::span<const Rect> rects, Dim strip_width,
                     PackScratch& scratch, StripResult& out) {
  check_inputs(rects, strip_width);
  if (!fits_soa_lanes(rects, strip_width)) {
    // Coordinates past the 32-bit lanes (never the engine's workloads —
    // frame lengths and cell counts are far smaller): take the reference
    // path, which computes in Dim throughout. Same result by contract.
    pack_strip_reference_into(rects, strip_width, scratch, out);
    return;
  }
  out.height = 0;
  out.placements.clear();
  out.placements.reserve(rects.size());
  pack_strip_soa(rects, strip_width, scratch, out);
}

StripResult pack_strip(std::vector<Rect> rects, Dim strip_width) {
  // Per-thread scratch: every caller — including each worker of parallel
  // interface composition — reuses its own buffers across packings.
  thread_local PackScratch scratch;
  StripResult out;
  pack_strip_into(rects, strip_width, scratch, out);
  return out;
}

std::optional<StripResult> pack_strip_bounded(std::vector<Rect> rects,
                                              Dim strip_width,
                                              Dim max_height) {
  for (const Rect& r : rects) {
    if (r.h > max_height) return std::nullopt;
  }
  StripResult result = pack_strip(std::move(rects), strip_width);
  if (result.height > max_height) return std::nullopt;
  return result;
}

Dim strip_height_lower_bound(const std::vector<Rect>& rects, Dim strip_width) {
  HARP_ASSERT(strip_width > 0);
  Dim area = 0;
  Dim tallest = 0;
  for (const Rect& r : rects) {
    area += r.area();
    tallest = std::max(tallest, r.h);
  }
  const Dim by_area = (area + strip_width - 1) / strip_width;
  return std::max(by_area, tallest);
}

}  // namespace harp::packing
