#include "packing/bottom_left.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace harp::packing {
namespace {

bool collides(const Placement& cand, const std::vector<Placement>& placed) {
  for (const Placement& p : placed) {
    if (cand.overlaps(p)) return true;
  }
  return false;
}

}  // namespace

StripResult pack_bottom_left(std::vector<Rect> rects, Dim strip_width) {
  if (strip_width <= 0) throw InvalidArgument("strip width must be positive");
  for (const Rect& r : rects) {
    if (r.w <= 0 || r.h <= 0) {
      throw InvalidArgument("rectangle dimensions must be positive: " +
                            to_string(r));
    }
    if (r.w > strip_width) {
      throw InvalidArgument("rectangle wider than strip: " + to_string(r));
    }
  }
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    if (a.area() != b.area()) return a.area() > b.area();
    if (a.h != b.h) return a.h > b.h;
    return a.id < b.id;
  });

  StripResult result;
  for (const Rect& r : rects) {
    // Candidate x positions: 0 plus the left/right edges of every placed
    // rectangle; candidate y positions at each x: 0 plus placed tops.
    std::vector<Dim> xs{0};
    std::vector<Dim> ys{0};
    for (const Placement& p : result.placements) {
      xs.push_back(p.x);
      xs.push_back(p.right());
      ys.push_back(p.top());
    }
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    std::sort(ys.begin(), ys.end());
    ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

    bool placed_rect = false;
    Placement best{};
    for (Dim y : ys) {
      for (Dim x : xs) {
        if (x + r.w > strip_width) continue;
        const Placement cand{x, y, r.w, r.h, r.id};
        if (collides(cand, result.placements)) continue;
        if (!placed_rect || cand.y < best.y ||
            (cand.y == best.y && cand.x < best.x)) {
          best = cand;
          placed_rect = true;
        }
        break;  // leftmost x at this y found; lower y already checked
      }
      if (placed_rect && best.y <= y) break;  // cannot improve further
    }
    HARP_ASSERT(placed_rect);  // y grows unboundedly, a slot always exists
    result.placements.push_back(best);
    result.height = std::max(result.height, best.top());
  }
  return result;
}

}  // namespace harp::packing
