// Packing validators: the test oracle for every packing algorithm.
#pragma once

#include <string>
#include <vector>

#include "packing/rect.hpp"

namespace harp::packing {

/// Checks that placements are pairwise non-overlapping, have positive
/// dimensions, lie within [0, width) x [0, height) (height < 0 means
/// unbounded above), and — when `expected` is given — exactly cover the
/// multiset of input rectangles (by id and dimensions).
/// Returns an empty string when valid, otherwise a description of the
/// first violation found.
std::string validate_packing(const std::vector<Placement>& placements,
                             Dim width, Dim height,
                             const std::vector<Rect>* expected = nullptr);

/// True if no two placements overlap.
bool placements_disjoint(const std::vector<Placement>& placements);

}  // namespace harp::packing
