#include "packing/maxrects.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace harp::packing {

FixedBinPacker::FixedBinPacker(Dim width, Dim height)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw InvalidArgument("container dimensions must be positive");
  }
  free_.push_back({0, 0, width, height, 0});
}

void FixedBinPacker::block(const Placement& p) {
  if (!p.inside(width_, height_)) {
    throw InvalidArgument("blocked region outside container: " + to_string(p));
  }
  split_free(p);
  prune();
}

std::optional<Placement> FixedBinPacker::peek(const Rect& r) const {
  if (r.w <= 0 || r.h <= 0) {
    throw InvalidArgument("rectangle dimensions must be positive: " +
                          to_string(r));
  }
  // Best-Short-Side-Fit: minimize the smaller leftover side, tie-break on
  // the larger leftover side, then bottom-left position for determinism.
  std::optional<Placement> best;
  Dim best_short = std::numeric_limits<Dim>::max();
  Dim best_long = std::numeric_limits<Dim>::max();
  for (const Placement& f : free_) {
    if (r.w > f.w || r.h > f.h) continue;
    const Dim leftover_w = f.w - r.w;
    const Dim leftover_h = f.h - r.h;
    const Dim short_side = std::min(leftover_w, leftover_h);
    const Dim long_side = std::max(leftover_w, leftover_h);
    const Placement cand{f.x, f.y, r.w, r.h, r.id};
    const bool better =
        short_side < best_short ||
        (short_side == best_short && long_side < best_long) ||
        (short_side == best_short && long_side == best_long && best &&
         (cand.y < best->y || (cand.y == best->y && cand.x < best->x)));
    if (better) {
      best = cand;
      best_short = short_side;
      best_long = long_side;
    }
  }
  return best;
}

std::optional<Placement> FixedBinPacker::insert(const Rect& r) {
  auto placed = peek(r);
  if (!placed) return std::nullopt;
  split_free(*placed);
  prune();
  return placed;
}

std::optional<std::vector<Placement>> FixedBinPacker::try_pack(
    std::vector<Rect> rects) {
  // Decreasing area is the standard order for greedy MaxRects; id as the
  // tie-break keeps runs deterministic.
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    if (a.area() != b.area()) return a.area() > b.area();
    if (a.h != b.h) return a.h > b.h;
    return a.id < b.id;
  });

  const std::vector<Placement> saved_free = free_;
  std::vector<Placement> placements;
  placements.reserve(rects.size());
  for (const Rect& r : rects) {
    auto placed = insert(r);
    if (!placed) {
      free_ = saved_free;  // roll back: all-or-nothing contract
      return std::nullopt;
    }
    placements.push_back(*placed);
  }
  return placements;
}

Dim FixedBinPacker::free_area() const {
  // The maximal free rectangles overlap, so integrate column by column via
  // a sweep: for each x-interval, union the y-intervals of rects covering
  // it. Container dimensions are small (<= slotframe length), so an O(n^2)
  // sweep is more than fast enough.
  std::vector<Dim> xs;
  for (const Placement& f : free_) {
    xs.push_back(f.x);
    xs.push_back(f.right());
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  Dim area = 0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const Dim x0 = xs[i];
    const Dim strip_w = xs[i + 1] - x0;
    // Collect y-intervals of free rects spanning this x strip and union.
    std::vector<std::pair<Dim, Dim>> spans;
    for (const Placement& f : free_) {
      if (f.x <= x0 && f.right() >= xs[i + 1]) spans.emplace_back(f.y, f.top());
    }
    std::sort(spans.begin(), spans.end());
    Dim covered = 0;
    bool open = false;
    Dim cur_lo = 0, cur_hi = 0;
    for (auto [lo, hi] : spans) {
      if (!open) {
        cur_lo = lo;
        cur_hi = hi;
        open = true;
      } else if (lo > cur_hi) {
        covered += cur_hi - cur_lo;
        cur_lo = lo;
        cur_hi = hi;
      } else {
        cur_hi = std::max(cur_hi, hi);
      }
    }
    if (open) covered += cur_hi - cur_lo;
    area += covered * strip_w;
  }
  return area;
}

void FixedBinPacker::split_free(const Placement& used) {
  std::vector<Placement> next;
  next.reserve(free_.size() + 4);
  for (const Placement& f : free_) {
    if (!f.overlaps(used)) {
      next.push_back(f);
      continue;
    }
    // Up to four maximal sub-rectangles of f survive around `used`.
    if (used.x > f.x) next.push_back({f.x, f.y, used.x - f.x, f.h, 0});
    if (used.right() < f.right()) {
      next.push_back({used.right(), f.y, f.right() - used.right(), f.h, 0});
    }
    if (used.y > f.y) next.push_back({f.x, f.y, f.w, used.y - f.y, 0});
    if (used.top() < f.top()) {
      next.push_back({f.x, used.top(), f.w, f.top() - used.top(), 0});
    }
  }
  free_ = std::move(next);
}

void FixedBinPacker::prune() {
  // Drop free rectangles fully contained in another (they are not maximal).
  std::vector<Placement> pruned;
  for (std::size_t i = 0; i < free_.size(); ++i) {
    const Placement& a = free_[i];
    bool contained = false;
    for (std::size_t j = 0; j < free_.size() && !contained; ++j) {
      if (i == j) continue;
      const Placement& b = free_[j];
      const bool same = a.x == b.x && a.y == b.y && a.w == b.w && a.h == b.h;
      if (same && j < i) {
        contained = true;  // deduplicate identical rects, keep the first
      } else if (!same && a.x >= b.x && a.y >= b.y && a.right() <= b.right() &&
                 a.top() <= b.top()) {
        contained = true;
      }
    }
    if (!contained) pruned.push_back(a);
  }
  free_ = std::move(pruned);
}

}  // namespace harp::packing
