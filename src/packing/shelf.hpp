// Shelf-based strip packing heuristics (FFDH / NFDH).
//
// Classic level algorithms used as ablation baselines against the best-fit
// skyline heuristic: the paper picks skyline for its quality/efficiency
// balance, and bench/ablation_packing quantifies that choice.
#pragma once

#include "packing/rect.hpp"

namespace harp::packing {

/// First-Fit Decreasing Height: sort by decreasing height, place each
/// rectangle on the first shelf with room, opening a new shelf on top when
/// none fits. 1.7·OPT asymptotic guarantee (Coffman et al. 1980).
StripResult pack_ffdh(std::vector<Rect> rects, Dim strip_width);

/// Next-Fit Decreasing Height: like FFDH but only the topmost shelf is
/// considered. Weaker (2·OPT) but O(n log n) with one pass.
StripResult pack_nfdh(std::vector<Rect> rects, Dim strip_width);

}  // namespace harp::packing
