// Geometry primitives for the 2-D packing algorithms.
//
// HARP's resource components are axis-aligned rectangles on the
// (time-slot, channel) grid; all packing code works on abstract integer
// rectangles and is agnostic to which axis is time and which is channel
// (harp/compose.cpp performs the paper's "double mapping" by transposing).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace harp::packing {

/// Dimension type for the packing plane. Values are small (slotframe
/// lengths in the hundreds) but arithmetic may accumulate, so use 64-bit.
using Dim = std::int64_t;

/// An unplaced rectangle to pack. `id` is an opaque caller tag (HARP uses
/// the subtree root's NodeId) carried through to the resulting placement.
struct Rect {
  Dim w{0};
  Dim h{0};
  std::uint64_t id{0};

  Dim area() const { return w * h; }
  friend auto operator<=>(const Rect&, const Rect&) = default;
};

/// A rectangle placed at (x, y) with its lower-left corner; the occupied
/// cells are [x, x+w) x [y, y+h).
struct Placement {
  Dim x{0};
  Dim y{0};
  Dim w{0};
  Dim h{0};
  std::uint64_t id{0};

  Dim right() const { return x + w; }
  Dim top() const { return y + h; }
  Dim area() const { return w * h; }

  /// True if the open interiors intersect (shared edges do not overlap).
  bool overlaps(const Placement& o) const {
    return x < o.right() && o.x < right() && y < o.top() && o.y < top();
  }

  /// True if this placement lies fully inside a W x H container at origin.
  bool inside(Dim container_w, Dim container_h) const {
    return x >= 0 && y >= 0 && right() <= container_w && top() <= container_h;
  }

  friend auto operator<=>(const Placement&, const Placement&) = default;
};

/// Result of a strip-packing run: the achieved strip height and one
/// placement per input rectangle (same ids, arbitrary order).
struct StripResult {
  Dim height{0};
  std::vector<Placement> placements;
};

/// Mirrors a placement set across the main diagonal (swap x/y and w/h).
/// Used by the double-mapping composition to convert between the
/// "channels fixed" and "slots fixed" orientations.
std::vector<Placement> transpose(std::vector<Placement> placements);

inline std::string to_string(const Rect& r) {
  return std::to_string(r.w) + "x" + std::to_string(r.h) + "#" +
         std::to_string(r.id);
}

inline std::string to_string(const Placement& p) {
  return "[" + std::to_string(p.x) + "," + std::to_string(p.y) + " " +
         std::to_string(p.w) + "x" + std::to_string(p.h) + "#" +
         std::to_string(p.id) + "]";
}

inline std::vector<Placement> transpose(std::vector<Placement> placements) {
  for (auto& p : placements) {
    std::swap(p.x, p.y);
    std::swap(p.w, p.h);
  }
  return placements;
}

}  // namespace harp::packing
