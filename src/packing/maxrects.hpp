// MaxRects packer for fixed containers with pre-occupied regions.
//
// Two HARP problems need packing into a container whose BOTH dimensions are
// fixed and where some area may already be taken:
//   * Problem 2 (Feasibility Test): can the sibling components plus an
//     enlarged one still fit inside the parent partition?
//   * Alg. 2 (Partition Adjustment): pack the displaced partitions into the
//     idle rectangular areas left by the partitions that stay put.
// The MaxRects scheme (Jylanki 2010) represents free space as the set of
// maximal free rectangles, which handles obstacles naturally: blocking a
// region simply splits every intersecting free rectangle. Placement uses
// the Best-Short-Side-Fit rule, a strong default for this family.
#pragma once

#include <optional>
#include <vector>

#include "packing/rect.hpp"

namespace harp::packing {

/// Free-space tracker and greedy packer over a W x H container.
class FixedBinPacker {
 public:
  /// Creates an empty container of the given dimensions (both > 0).
  FixedBinPacker(Dim width, Dim height);

  /// Marks `p` as occupied. `p` must lie inside the container; it may
  /// overlap previously blocked regions (the union is occupied).
  void block(const Placement& p);

  /// Attempts to place one rectangle using Best-Short-Side-Fit without
  /// modifying the packer state. Returns the placement or nullopt.
  std::optional<Placement> peek(const Rect& r) const;

  /// Places one rectangle (Best-Short-Side-Fit) and commits it as
  /// occupied. Returns nullopt and leaves the state untouched on failure.
  std::optional<Placement> insert(const Rect& r);

  /// Greedily packs all of `rects` (processed in decreasing-area order)
  /// and commits them. Returns the placements on success; on failure
  /// returns nullopt and leaves the packer state untouched.
  /// Note: as a heuristic this can miss feasible packings; HARP treats a
  /// failure as "escalate to the parent", matching the paper's use of a
  /// heuristic RPP solver.
  std::optional<std::vector<Placement>> try_pack(std::vector<Rect> rects);

  /// Total free area remaining (sum over disjoint free cells, not the sum
  /// of the overlapping maximal rectangles).
  Dim free_area() const;

  /// True if a single rectangle of the given size could be placed now.
  bool fits(Dim w, Dim h) const { return peek({w, h, 0}).has_value(); }

  Dim width() const { return width_; }
  Dim height() const { return height_; }

  /// Exposed for tests: current maximal free rectangles.
  const std::vector<Placement>& free_rects() const { return free_; }

 private:
  void split_free(const Placement& used);
  void prune();

  Dim width_;
  Dim height_;
  std::vector<Placement> free_;
};

}  // namespace harp::packing
