// Co-existing networks: three independent plants share the 2.4 GHz band.
//
// Each factory cell runs its own HARP network — different gateway,
// topology, even slotframe length — and a channel broker partitions the
// 16 channels into per-network bands. Inside its band every network is
// its own master; when one outgrows its band, the broker widens it from
// the spare pool (or borrows from the laziest neighbor), and isolation
// guarantees the others never hear a thing.
#include <cstdio>

#include "coexist/channel_broker.hpp"
#include "common/rng.hpp"
#include "net/topology_gen.hpp"
#include "net/traffic.hpp"

using namespace harp;

namespace {

coexist::ChannelBroker::NetworkSpec plant(std::uint64_t seed,
                                          std::size_t nodes, SlotId length) {
  Rng rng(seed);
  coexist::ChannelBroker::NetworkSpec spec{
      net::random_tree({.num_nodes = nodes, .num_layers = 3}, rng),
      {},
      {},
      1};
  spec.frame.length = length;
  spec.frame.data_slots = static_cast<SlotId>(length - 19);
  spec.tasks = net::uniform_echo_tasks(spec.topology, length);
  return spec;
}

void show_bands(const coexist::ChannelBroker& broker) {
  for (std::size_t id = 0; id < broker.network_count(); ++id) {
    const auto b = broker.band(id);
    std::printf("  network %zu: channels [%u,%u)  (%lld cells of demand)\n",
                id, b.first, b.first + b.width,
                static_cast<long long>(
                    broker.engine(id).traffic().total_cells()));
  }
  std::printf("  spare channels: %u\n", broker.spare_channels());
}

}  // namespace

int main() {
  coexist::ChannelBroker broker(16);

  // Three heterogeneous plants: different sizes AND slotframe lengths.
  const auto a = broker.admit(plant(1, 15, 199));
  const auto b = broker.admit(plant(2, 10, 101));
  const auto c = broker.admit(plant(3, 20, 397));
  if (!a || !b || !c) {
    std::printf("admission failed unexpectedly\n");
    return 1;
  }
  std::printf("three networks admitted into disjoint channel bands:\n");
  show_bands(broker);
  std::printf("cross-network validation: %s\n\n",
              broker.validate().empty() ? "isolated, collision-free"
                                        : broker.validate().c_str());

  // Plant A's production line speeds up: every link needs more cells.
  std::printf("plant %zu ramps all its links to 8 cells...\n", *a);
  std::size_t rebanded = 0, intra = 0;
  for (NodeId child = 1; child < 15; ++child) {
    const auto r = broker.request_demand(*a, child, Direction::kUp, 8);
    if (!r.satisfied) {
      std::printf("  link %u denied!\n", child);
      continue;
    }
    rebanded += r.networks_rebanded;
    intra += r.intra_messages;
  }
  std::printf("  done: %zu intra-network HARP messages, %zu band "
              "adjustments\n\n",
              intra, rebanded);
  show_bands(broker);
  std::printf("\nfinal validation: %s\n",
              broker.validate().empty() ? "isolated, collision-free"
                                        : broker.validate().c_str());
  return 0;
}
