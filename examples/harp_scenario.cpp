// harp_scenario: drive the full HARP simulation from a scenario script.
//
// Reads a plain-text scenario (one command per line, `key=value`
// arguments, `#` comments) and executes it on the software testbed —
// distributed agents over the management plane plus the TSCH data plane.
// This is the "kick the tires" tool: reviewers reproduce any situation
// without writing C++.
//
//   net testbed | fig1 | random nodes=50 layers=5 seed=3
//   frame length=199 data=190 channels=16
//   options slack=1 pdr=0.98 seed=7
//   tasks period=199                 # echo task on every device node
//   bootstrap
//   run frames=30
//   demand node=15 dir=up cells=4
//   rate task=15 period=66
//   join parent=15 up=1 down=1 period=199
//   leave node=49
//   roam node=49 parent=16
//   jam channel=3 frames=20 factor=0
//   stats                            # latency/delivery/deadline report
//
// Usage: harp_scenario [scenario-file]   (no argument runs a demo script)
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/topology_gen.hpp"
#include "net/traffic.hpp"
#include "sim/harp_sim.hpp"

using namespace harp;

namespace {

const char* kDemoScript = R"(# demo: testbed network, a surge, a roam, a jam
net testbed
frame length=199 data=190 channels=16
options slack=1 pdr=0.99 seed=7
tasks period=199
bootstrap
run frames=20
stats
demand node=15 dir=up cells=6
run frames=20
roam node=49 parent=16
jam channel=2 frames=15 factor=0.2
run frames=30
stats
)";

struct Args {
  std::map<std::string, std::string> kv;
  std::string positional;

  std::string str(const std::string& key, const std::string& fallback = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  long num(const std::string& key, std::optional<long> fallback = {}) const {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      if (fallback) return *fallback;
      throw InvalidArgument("missing argument '" + key + "'");
    }
    return std::stol(it->second);
  }
  double real(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stod(it->second);
  }
};

Args parse_args(std::istringstream& line) {
  Args args;
  std::string token;
  while (line >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      args.positional = token;
    } else {
      args.kv[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return args;
}

class ScenarioRunner {
 public:
  int run(std::istream& in) {
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
      ++line_no;
      const auto hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      std::istringstream line(raw);
      std::string cmd;
      if (!(line >> cmd)) continue;
      try {
        execute(cmd, parse_args(line));
      } catch (const std::exception& e) {
        std::printf("line %d: %s: ERROR: %s\n", line_no, cmd.c_str(),
                    e.what());
        return 1;
      }
    }
    return 0;
  }

 private:
  void execute(const std::string& cmd, const Args& args) {
    if (cmd == "net") {
      if (args.positional == "testbed") {
        topo_ = net::testbed_tree();
      } else if (args.positional == "fig1") {
        topo_ = net::fig1_tree();
      } else if (args.positional == "random") {
        Rng rng(static_cast<std::uint64_t>(args.num("seed", 1)));
        topo_ = net::random_tree(
            {.num_nodes = static_cast<std::size_t>(args.num("nodes", 50)),
             .num_layers = static_cast<int>(args.num("layers", 5)),
             .max_children = static_cast<std::size_t>(args.num("fanout", 0))},
            rng);
      } else {
        throw InvalidArgument("net expects testbed|fig1|random");
      }
      std::printf("net: %zu nodes, %d layers\n", topo_->size(),
                  topo_->depth());
    } else if (cmd == "frame") {
      frame_.length = static_cast<SlotId>(args.num("length", 199));
      frame_.data_slots = static_cast<SlotId>(args.num("data", 167));
      frame_.num_channels = static_cast<ChannelId>(args.num("channels", 16));
      frame_.validate();
    } else if (cmd == "options") {
      options_slack_ = static_cast<int>(args.num("slack", 0));
      options_pdr_ = args.real("pdr", 1.0);
      options_seed_ = static_cast<std::uint64_t>(args.num("seed", 1));
    } else if (cmd == "tasks") {
      require_net();
      tasks_ = net::uniform_echo_tasks(
          *topo_, static_cast<std::uint32_t>(args.num("period", 199)));
      const long deadline = args.num("deadline", 0);
      for (auto& t : tasks_) {
        t.deadline_slots = static_cast<std::uint32_t>(deadline);
      }
      std::printf("tasks: %zu echo tasks, period %ld slots\n", tasks_.size(),
                  args.num("period", 199));
    } else if (cmd == "bootstrap") {
      require_net();
      sim::HarpSimulation::Options options{frame_};
      options.pdr = options_pdr_;
      options.seed = options_seed_;
      options.own_slack = options_slack_;
      sim_ = std::make_unique<sim::HarpSimulation>(*topo_, tasks_, options);
      const auto slots = sim_->bootstrap();
      std::printf("bootstrap: %.2f s over the management plane (%zu "
                  "messages)\n",
                  static_cast<double>(slots) * frame_.slot_seconds,
                  sim_->mgmt().log().size());
    } else if (cmd == "run") {
      require_sim();
      sim_->run_frames(static_cast<AbsoluteSlot>(args.num("frames")));
      std::printf("run: now t=%.1f s, backlog %zu\n", sim_->now_seconds(),
                  sim_->data().backlog());
    } else if (cmd == "demand") {
      require_sim();
      const auto node = static_cast<NodeId>(args.num("node"));
      const Direction dir =
          args.str("dir", "up") == "down" ? Direction::kDown : Direction::kUp;
      const auto s = sim_->change_link_demand(
          node, dir, static_cast<int>(args.num("cells")));
      std::printf("demand: node %u %s -> %ld cells; %zu HARP msgs over "
                  "%llu slotframes\n",
                  node, to_string(dir), args.num("cells"), s.harp_messages,
                  static_cast<unsigned long long>(s.elapsed_slotframes));
    } else if (cmd == "rate") {
      require_sim();
      const auto s = sim_->change_task_rate(
          static_cast<TaskId>(args.num("task")),
          static_cast<std::uint32_t>(args.num("period")));
      std::printf("rate: task %ld period -> %ld; %zu HARP msgs\n",
                  args.num("task"), args.num("period"), s.harp_messages);
    } else if (cmd == "join") {
      require_sim();
      const auto r = sim_->join_node(
          static_cast<NodeId>(args.num("parent")),
          static_cast<int>(args.num("up", 1)),
          static_cast<int>(args.num("down", 1)),
          static_cast<std::uint32_t>(args.num("period", 0)));
      std::printf("join: node %u under %ld (%zu messages)\n", r.node,
                  args.num("parent"), r.summary.all_messages);
    } else if (cmd == "leave") {
      require_sim();
      sim_->leave_node(static_cast<NodeId>(args.num("node")));
      std::printf("leave: node %ld departed\n", args.num("node"));
    } else if (cmd == "roam") {
      require_sim();
      const auto node = static_cast<NodeId>(args.num("node"));
      const auto s =
          sim_->roam_node(node, static_cast<NodeId>(args.num("parent")));
      std::printf("roam: node %u -> parent %ld; %zu HARP msgs\n", node,
                  args.num("parent"), s.harp_messages);
    } else if (cmd == "jam") {
      require_sim();
      const auto from = sim_->now();
      sim_->data().add_interference(
          static_cast<ChannelId>(args.num("channel")), from,
          from + static_cast<AbsoluteSlot>(args.num("frames")) *
                     frame_.length,
          args.real("factor", 0.0));
      std::printf("jam: channel %ld for %ld frames (success x%.2f)\n",
                  args.num("channel"), args.num("frames"),
                  args.real("factor", 0.0));
    } else if (cmd == "stats") {
      require_sim();
      const auto& m = sim_->metrics();
      Stats all;
      for (NodeId v = 1; v < sim_->topology().size(); ++v) {
        all.merge(m.node_latency(v));
      }
      std::printf("stats @ %.1f s: generated %llu, delivered %llu "
                  "(%.1f%%), dropped %llu, deadline misses %llu\n",
                  sim_->now_seconds(),
                  static_cast<unsigned long long>(m.total_generated()),
                  static_cast<unsigned long long>(m.total_delivered()),
                  m.total_generated()
                      ? 100.0 * static_cast<double>(m.total_delivered()) /
                            static_cast<double>(m.total_generated())
                      : 0.0,
                  static_cast<unsigned long long>(m.total_dropped()),
                  static_cast<unsigned long long>(
                      m.total_deadline_misses()));
      if (!all.empty()) {
        std::printf("        latency mean %.2f s, p95 %.2f s, max %.2f s\n",
                    all.mean(), all.percentile(95), all.max());
      }
    } else {
      throw InvalidArgument("unknown command '" + cmd + "'");
    }
  }

  void require_net() const {
    if (!topo_) throw InvalidArgument("run 'net' first");
  }
  void require_sim() const {
    if (!sim_) throw InvalidArgument("run 'bootstrap' first");
  }

  std::optional<net::Topology> topo_;
  net::SlotframeConfig frame_;
  std::vector<net::Task> tasks_;
  int options_slack_ = 0;
  double options_pdr_ = 1.0;
  std::uint64_t options_seed_ = 1;
  std::unique_ptr<sim::HarpSimulation> sim_;
};

}  // namespace

int main(int argc, char** argv) {
  ScenarioRunner runner;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    return runner.run(file);
  }
  std::printf("(no scenario file given; running the built-in demo)\n\n");
  std::istringstream demo{std::string(kDemoScript)};
  return runner.run(demo);
}
