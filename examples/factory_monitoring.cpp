// Factory monitoring: the paper's testbed workload, end to end.
//
// A 50-node, 5-hop network (the Fig. 7(c) analogue) runs one closed-loop
// sensing task per node (sample -> gateway -> actuation echo) over a lossy
// channel. The whole control plane is distributed: agents bootstrap over
// management-sub-frame cells, then the TSCH data plane runs for a few
// simulated minutes. Prints per-layer latency/reliability — the Fig. 9
// view of the system.
#include <cstdio>
#include <map>

#include "net/topology_gen.hpp"
#include "net/traffic.hpp"
#include "sim/harp_sim.hpp"

using namespace harp;

int main() {
  const net::Topology topo = net::testbed_tree();
  net::SlotframeConfig frame;  // 199 x 16, 1.99 s per slotframe

  // 2-second sampling on every node, like the testbed experiment.
  const auto tasks = net::uniform_echo_tasks(topo, frame.length);

  sim::HarpSimulation::Options options{frame};
  options.pdr = 0.97;  // environmental interference: 3% per-hop loss
  options.seed = 7;
  sim::HarpSimulation sim(topo, tasks, options);

  const AbsoluteSlot boot_slots = sim.bootstrap();
  std::printf("distributed bootstrap finished in %.2f s (%llu slots, %zu "
              "management messages)\n\n",
              static_cast<double>(boot_slots) * frame.slot_seconds,
              static_cast<unsigned long long>(boot_slots),
              sim.mgmt().log().size());

  const int minutes = 3;
  sim.run_frames(static_cast<AbsoluteSlot>(
      minutes * 60.0 / frame.frame_seconds()));

  // Aggregate per layer.
  struct LayerAgg {
    Stats latency;
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
  };
  std::map<int, LayerAgg> layers;
  for (NodeId v = 1; v < topo.size(); ++v) {
    LayerAgg& agg = layers[topo.node_layer(v)];
    agg.latency.merge(sim.metrics().node_latency(v));
    agg.generated += sim.metrics().generated(v);
    agg.delivered += sim.metrics().node_latency(v).count();
  }

  std::printf("%d simulated minutes, %llu packets generated\n", minutes,
              static_cast<unsigned long long>(
                  sim.metrics().total_generated()));
  std::printf("layer  nodes  avg-lat(s)  p95-lat(s)  delivery\n");
  for (const auto& [layer, agg] : layers) {
    std::printf("%5d  %5zu  %10.3f  %10.3f  %7.2f%%\n", layer,
                topo.nodes_at_layer(layer).size(), agg.latency.mean(),
                agg.latency.percentile(95),
                100.0 * static_cast<double>(agg.delivered) /
                    static_cast<double>(agg.generated));
  }
  std::printf("\nslotframe is %.2f s: every layer's average stays within "
              "about one slotframe, the compliant-schedule property.\n",
              frame.frame_seconds());
  return 0;
}
