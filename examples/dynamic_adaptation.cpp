// Dynamic adaptation: a traffic surge rippling through the hierarchy.
//
// Reproduces the Fig. 10 scenario shape: a node's sampling rate steps up
// twice at runtime. The first step fits the idle cells of its parent's
// partition (local, zero HARP messages); the second forces a partition
// adjustment that climbs the tree. The example prints, for each step, the
// protocol messages, the nodes involved, and how long the reconfiguration
// took in slotframes of real network time.
#include <cstdio>

#include "net/topology_gen.hpp"
#include "net/traffic.hpp"
#include "sim/harp_sim.hpp"

using namespace harp;

namespace {

void report(const char* what, const sim::MgmtPlane::Summary& s) {
  std::printf("%s\n", what);
  std::printf("  HARP messages : %zu (of %zu total incl. cell updates)\n",
              s.harp_messages, s.all_messages);
  std::printf("  bytes on air  : %zu\n", s.bytes);
  std::printf("  nodes involved: %zu, spanning %d layer(s)\n", s.nodes.size(),
              s.layers);
  std::printf("  completed in  : %.2f s (%llu slotframe(s))\n\n",
              s.elapsed_seconds,
              static_cast<unsigned long long>(s.elapsed_slotframes));
}

double recent_latency(sim::HarpSimulation& sim, NodeId node,
                      AbsoluteSlot frames) {
  sim.data().metrics().clear();
  sim.run_frames(frames);
  const auto& lat = sim.metrics().node_latency(node);
  return lat.empty() ? -1.0 : lat.mean();
}

}  // namespace

int main() {
  const net::Topology topo = net::testbed_tree();
  net::SlotframeConfig frame;
  frame.data_slots = 190;  // roomier data sub-frame for the surge

  const NodeId kNode = 15;  // a layer-3 relay, like the paper's Node 15
  const auto tasks = net::uniform_echo_tasks(topo, frame.length);

  sim::HarpSimulation::Options options{frame};
  options.own_slack = 1;  // one idle cell per scheduling partition
  sim::HarpSimulation sim(topo, tasks, options);
  sim.bootstrap();

  std::printf("baseline: node %u at 1 packet/slotframe\n", kNode);
  std::printf("  e2e latency %.2f s (slotframe = %.2f s)\n\n",
              recent_latency(sim, kNode, 30), frame.frame_seconds());

  // Step 1: 1 -> 1.5 packets/slotframe (period 199 -> 133).
  const auto s1 = sim.change_task_rate(kNode, 133);
  report("step 1: rate 1 -> 1.5 pkt/slotframe (absorbed by idle cells)", s1);
  std::printf("  latency after settling: %.2f s\n\n",
              recent_latency(sim, kNode, 30));

  // Step 2: 1.5 -> ~3.6 packets/slotframe (period 133 -> 55).
  const auto s2 = sim.change_task_rate(kNode, 55);
  report("step 2: rate 1.5 -> 3.6 pkt/slotframe (partition adjustment)", s2);
  std::printf("  latency after settling: %.2f s\n",
              recent_latency(sim, kNode, 60));

  std::printf("\nreservations along node %u's uplink path now:\n", kNode);
  const auto sched = sim.current_schedule();
  for (NodeId v : topo.path_to_gateway(kNode)) {
    if (v == net::Topology::gateway()) continue;
    std::printf("  link %-2u: %zu cells up, %zu down\n", v,
                sched.cells(v, Direction::kUp).size(),
                sched.cells(v, Direction::kDown).size());
  }
  return 0;
}
