// Quickstart: HARP on the paper's Fig. 1 example network.
//
// Builds the 12-node, 3-layer tree, derives per-link cell requirements
// from a small task set, runs the static phases (interface generation,
// partition allocation, distributed RM scheduling) through the public
// HarpEngine API, and prints the resulting partitions and schedule.
// Finishes with one dynamic adjustment to show the reconfiguration path,
// captured through the observability layer (docs/OBSERVABILITY.md).
#include <cstdio>
#include <iostream>

#include "harp/engine.hpp"
#include "net/topology_gen.hpp"
#include "net/traffic.hpp"
#include "obs/obs.hpp"

using namespace harp;

namespace {

void print_partitions(const core::HarpEngine& engine, Direction dir) {
  std::printf("  %s partitions (node @ layer -> [slots,channels]@(t,c)):\n",
              dir == Direction::kUp ? "uplink" : "downlink");
  for (const auto& row : engine.partitions().rows(dir)) {
    std::printf("    node %-2u layer %d -> %s\n", row.node, row.layer,
                core::to_string(row.part).c_str());
  }
}

void print_schedule(const core::HarpEngine& engine) {
  std::printf("  schedule (link -> cells):\n");
  for (NodeId v = 1; v < engine.topology().size(); ++v) {
    for (Direction dir : {Direction::kUp, Direction::kDown}) {
      const auto& cells = engine.schedule().cells(v, dir);
      if (cells.empty()) continue;
      std::printf("    %-4s child %-2u:", to_string(dir), v);
      for (Cell c : cells) std::printf(" %s", to_string(c).c_str());
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  // The Fig. 1(a) network: gateway + 11 devices in 3 layers.
  const net::Topology topo = net::fig1_tree();
  std::printf("network: %zu nodes, %d layers\n", topo.size(), topo.depth());

  // One closed-loop (echo) task per leaf-ish sensor, 1 packet/slotframe.
  net::SlotframeConfig frame;  // 199 slots x 16 channels, 10 ms slots
  const std::vector<net::Task> tasks = net::uniform_echo_tasks(topo, frame.length);

  // Static phases happen in the constructor; InfeasibleError would mean
  // the task set cannot be admitted.
  core::HarpEngine engine(topo, tasks, frame);
  std::printf("bootstrap OK; schedule uses %zu cells, %zu messages in a "
              "distributed deployment\n\n",
              engine.schedule().total_cells(),
              engine.bootstrap_message_count());

  print_partitions(engine, Direction::kUp);
  print_partitions(engine, Direction::kDown);
  print_schedule(engine);

  // Validate the paper's core claims programmatically.
  std::printf("\nvalidation: %s\n",
              engine.validate().empty() ? "collision-free, isolated, sufficient"
                                        : engine.validate().c_str());

  // Turn the observability layer on before the dynamic phase: the trace
  // sink captures typed events (adjust_start/adjust_end/phase) and the
  // phase timers fill the harp.engine.*_ns histograms.
  obs::enable(/*trace_capacity=*/256);

  // Dynamic phase: node 9's uplink demand triples.
  const auto report = engine.request_demand(9, Direction::kUp, 3);
  std::printf("\ndemand change on node 9 (1 -> 3 cells): %s, %zu HARP "
              "messages, resolved at node %u\n",
              core::to_string(report.kind), report.messages.size(),
              report.resolved_at);
  for (const auto& m : report.messages) {
    std::printf("  %s: %u -> %u\n", core::to_string(m.type), m.from, m.to);
  }
  std::printf("validation after adjustment: %s\n",
              engine.validate().empty() ? "still collision-free"
                                        : engine.validate().c_str());

  // What the adjustment looked like to the observability layer: counters
  // from the global registry and the captured trace as JSON Lines. Bench
  // binaries expose the same data via --json/--trace.
  obs::disable();
  const auto& reg = obs::MetricsRegistry::global();
  std::printf("\nobservability (docs/OBSERVABILITY.md):\n");
  for (const char* name :
       {"harp.engine.adjust_requests", "harp.engine.adjust_partition",
        "harp.adjust.layout_calls"}) {
    if (const auto* c = reg.find_counter(name)) {
      std::printf("  %s = %llu\n", name,
                  static_cast<unsigned long long>(c->value()));
    }
  }
  if (const auto* h = reg.find_histogram("harp.engine.adjust_ns")) {
    std::printf("  harp.engine.adjust_ns: count %llu, mean %.0f ns\n",
                static_cast<unsigned long long>(h->count()), h->mean());
  }
  std::printf("  trace (%zu events):\n",
              obs::TraceSink::global().size());
  obs::TraceSink::global().write_jsonl(std::cout);
  return 0;
}
