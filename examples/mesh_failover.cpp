// Mesh failover: HARP beyond trees (the paper's future-work extension).
//
// A dense industrial deployment is a mesh, not a tree: most nodes hear
// several relays. This example decomposes a random mesh into a primary
// and a maximally link-disjoint secondary tree, runs HARP on each in
// disjoint slot regions, and then — when interference takes out a
// corridor — fails the affected sensors over to their backup parents with
// a handful of messages, no routing reconvergence, and a provably
// collision-free schedule throughout.
#include <cstdio>

#include "common/rng.hpp"
#include "mesh/multi_tree.hpp"
#include "net/traffic.hpp"

using namespace harp;

int main() {
  Rng rng(2022);
  const mesh::MeshGraph graph = mesh::random_mesh(30, rng);
  std::printf("mesh: %zu nodes, %zu links (avg degree %.1f)\n", graph.size(),
              graph.num_links(),
              2.0 * static_cast<double>(graph.num_links()) /
                  static_cast<double>(graph.size()));

  std::vector<net::Task> tasks;
  for (NodeId v = 1; v < graph.size(); ++v) {
    tasks.push_back({.id = v, .source = v, .period_slots = 397, .echo = true});
  }

  net::SlotframeConfig frame;
  frame.length = 397;   // roomy split: both hierarchies stay admissible
  frame.data_slots = 360;
  // Hot standby: one pre-reserved cell per secondary link makes
  // failovers near-free (see bench/ablation_failover).
  mesh::MultiTreeHarp harp(graph, tasks, {frame, 0.35, 1, 1});

  std::printf("decomposition: primary depth %d, secondary depth %d, "
              "uplink diversity %.0f%%\n",
              harp.topology(mesh::Tree::kPrimary).depth(),
              harp.topology(mesh::Tree::kSecondary).depth(),
              100.0 * harp.uplink_diversity());
  const auto [p0, p1] = harp.region(mesh::Tree::kPrimary);
  const auto [s0, s1] = harp.region(mesh::Tree::kSecondary);
  std::printf("slot regions: primary [%u,%u), secondary [%u,%u)\n\n", p0, p1,
              s0, s1);
  std::printf("initial validation: %s\n\n",
              harp.validate().empty() ? "both hierarchies collision-free"
                                      : harp.validate().c_str());

  // Interference hits the corridor of some relay: its children (and any
  // node that prefers its backup link) fail over.
  const NodeId victims[] = {5, 9, 14};
  for (NodeId v : victims) {
    const auto before = harp.assignment(v);
    const auto r = harp.failover(v);
    std::printf("failover node %-2u (%s -> %s): %s, %zu messages, %zu links "
                "re-reserved\n",
                v, to_string(before), to_string(harp.assignment(v)),
                r.satisfied ? "OK" : "REJECTED", r.messages, r.links_touched);
  }
  std::printf("\nvalidation after failovers: %s\n",
              harp.validate().empty() ? "collision-free" : harp.validate().c_str());

  // The interference clears; traffic returns to the primary hierarchy.
  for (NodeId v : victims) {
    const auto r = harp.failover(v);
    std::printf("restore node %-2u: %s, %zu messages\n", v,
                r.satisfied ? "OK" : "REJECTED", r.messages);
  }
  std::printf("\nsecondary hierarchy back to standby: %lld reserved cells "
              "in use\n",
              static_cast<long long>(
                  harp.engine(mesh::Tree::kSecondary).traffic().total_cells()));
  std::printf("final validation: %s\n",
              harp.validate().empty() ? "collision-free" : harp.validate().c_str());
  return 0;
}
