// Roaming sensor: interference-driven topology dynamics.
//
// The paper's Sec. I motivation: "interference can cause the network
// nodes to change their connected nodes to seek more reliable links,
// which changes the network topology." This example shows the resource
// side of that story through the engine API: a sensor leaves its jammed
// relay, re-homes under a healthier one (HARP moves its reservations with
// bounded messaging), new devices join, and a drained device departs —
// with the schedule provably collision-free after every event.
#include <cstdio>

#include "harp/engine.hpp"
#include "net/topology_gen.hpp"
#include "net/traffic.hpp"

using namespace harp;

namespace {

void show(const char* what, const core::HarpEngine::TopoChangeReport& r,
          const core::HarpEngine& engine) {
  std::printf("%s\n", what);
  std::printf("  node %u, %zu HARP messages (up %zu / down %zu), %s\n",
              r.node, r.total_messages(), r.up.messages.size(),
              r.down.messages.size(),
              r.satisfied() ? "granted" : "REJECTED");
  std::printf("  schedule check: %s\n\n",
              engine.validate().empty() ? "collision-free" : "BROKEN");
}

}  // namespace

int main() {
  net::SlotframeConfig frame;
  frame.data_slots = 190;
  const net::Topology topo = net::testbed_tree();
  const auto tasks = net::uniform_echo_tasks(topo, frame.length);
  core::HarpEngine engine(topo, tasks, frame, {.own_slack = 1});

  std::printf("50-node network bootstrapped; %zu cells scheduled.\n\n",
              engine.schedule().total_cells());

  // A fresh sensor joins near the production line (under relay 15).
  const auto join = engine.attach_leaf(15, 1, 1);
  show("EVENT: new sensor joins under relay 15", join, engine);
  const NodeId sensor = join.node;

  // Interference degrades relay 15's corridor; the sensor re-homes under
  // relay 16 (same area, different corridor).
  const auto roam = engine.reparent_leaf(sensor, 16);
  show("EVENT: sensor roams from relay 15 to relay 16 (interference)", roam,
       engine);
  std::printf("  now at layer %d under node %u\n\n",
              engine.topology().node_layer(sensor),
              engine.topology().parent(sensor));

  // The sensor ramps its sampling after an anomaly.
  const auto surge = engine.request_demand(sensor, Direction::kUp, 3);
  std::printf("EVENT: sensor triples its sampling rate\n");
  std::printf("  %s, %zu HARP messages\n\n", core::to_string(surge.kind),
              surge.messages.size());

  // An old device at the network edge powers down.
  const auto leave = engine.detach_leaf(49);
  show("EVENT: node 49 powers down (resources released, reservation kept)",
       leave, engine);

  // A replacement sensor joins under the same relay: the kept
  // reservation absorbs it with zero partition messages.
  const auto replace = engine.attach_leaf(engine.topology().parent(49), 1, 1);
  std::printf("EVENT: replacement sensor joins under node 49's old relay\n");
  std::printf("  %zu HARP messages (the kept reservation made it local)\n\n",
              replace.total_messages());

  std::printf("final state: %zu nodes, %zu scheduled cells, validation: %s\n",
              engine.topology().size(), engine.schedule().total_cells(),
              engine.validate().empty() ? "collision-free, isolated"
                                        : engine.validate().c_str());
  return 0;
}
