// Scheduler face-off: HARP vs the distributed baselines on one network.
//
// Generates a random 50-node topology, loads every link with the same
// demand, builds a schedule with each scheduler (Random, MSF, LDSF, HARP),
// and reports the collision probability — the per-transmission chance of
// an exact-cell or half-duplex conflict. A compact version of the Fig. 11
// comparison on a single instance.
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "net/topology_gen.hpp"
#include "schedulers/scheduler.hpp"

using namespace harp;

int main() {
  Rng topo_rng(2022);
  const net::Topology topo =
      net::random_tree({.num_nodes = 50, .num_layers = 5, .max_children = 4},
                       topo_rng);
  net::SlotframeConfig frame;
  frame.data_slots = frame.length;  // pure scheduling comparison: the whole
                                    // slotframe is schedulable

  std::printf("topology: 50 nodes, 5 layers, slotframe %ux%u\n\n",
              frame.length, frame.num_channels);
  std::printf("%-8s", "demand");
  std::unique_ptr<sched::Scheduler> schedulers[] = {
      sched::make_random_scheduler(), sched::make_msf_scheduler(),
      sched::make_ldsf_scheduler(), sched::make_harp_scheduler()};
  for (const auto& s : schedulers) std::printf("%10s", s->name().c_str());
  std::printf("   <- collision probability\n");

  for (int demand = 1; demand <= 6; ++demand) {
    net::TrafficMatrix traffic(topo.size());
    for (NodeId v = 1; v < topo.size(); ++v) {
      traffic.set_uplink(v, demand);
      traffic.set_downlink(v, demand);
    }
    std::printf("%-8d", demand);
    for (const auto& s : schedulers) {
      Rng rng(42 + demand);
      const auto schedule = s->build(topo, traffic, frame, rng);
      std::printf("%9.1f%%",
                  100.0 * sched::collision_probability(topo, schedule));
    }
    std::printf("\n");
  }
  std::printf("\nHARP stays at zero: hierarchical partitioning dedicates "
              "disjoint cells to every link by construction.\n");
  return 0;
}
